#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cmtos::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips doubles; trim to %g-style compactness where exact.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%g", v);
    double b2 = 0;
    std::sscanf(shorter, "%lf", &b2);
    if (b2 == v) return shorter;
  }
  return buf;
}

namespace {

/// Recursive-descent validator.  `p` advances past the parsed value.
struct Cursor {
  std::string_view s;
  std::size_t p = 0;
  int depth = 0;

  bool eof() const { return p >= s.size(); }
  char peek() const { return s[p]; }
  void skip_ws() {
    while (!eof() && (s[p] == ' ' || s[p] == '\t' || s[p] == '\n' || s[p] == '\r')) ++p;
  }
  bool literal(std::string_view lit) {
    if (s.substr(p, lit.size()) != lit) return false;
    p += lit.size();
    return true;
  }
};

bool parse_value(Cursor& c);

bool parse_string(Cursor& c) {
  if (c.eof() || c.peek() != '"') return false;
  ++c.p;
  while (!c.eof()) {
    const char ch = c.s[c.p];
    if (ch == '"') {
      ++c.p;
      return true;
    }
    if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control char
    if (ch == '\\') {
      ++c.p;
      if (c.eof()) return false;
      const char esc = c.s[c.p];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          ++c.p;
          if (c.eof() || !std::isxdigit(static_cast<unsigned char>(c.s[c.p]))) return false;
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                 esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
    ++c.p;
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c) {
  std::size_t start = c.p;
  if (!c.eof() && c.peek() == '-') ++c.p;
  if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
  if (c.peek() == '0') {
    ++c.p;
  } else {
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.p;
  }
  if (!c.eof() && c.peek() == '.') {
    ++c.p;
    if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.p;
  }
  if (!c.eof() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.p;
    if (!c.eof() && (c.peek() == '+' || c.peek() == '-')) ++c.p;
    if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.p;
  }
  return c.p > start;
}

bool parse_object(Cursor& c) {
  ++c.p;  // '{'
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.p;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') return false;
    ++c.p;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.p;
      continue;
    }
    if (c.peek() == '}') {
      ++c.p;
      return true;
    }
    return false;
  }
}

bool parse_array(Cursor& c) {
  ++c.p;  // '['
  c.skip_ws();
  if (!c.eof() && c.peek() == ']') {
    ++c.p;
    return true;
  }
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.p;
      continue;
    }
    if (c.peek() == ']') {
      ++c.p;
      return true;
    }
    return false;
  }
}

bool parse_value(Cursor& c) {
  if (++c.depth > 512) return false;  // depth bomb guard
  c.skip_ws();
  if (c.eof()) return false;
  bool ok = false;
  switch (c.peek()) {
    case '{': ok = parse_object(c); break;
    case '[': ok = parse_array(c); break;
    case '"': ok = parse_string(c); break;
    case 't': ok = c.literal("true"); break;
    case 'f': ok = c.literal("false"); break;
    case 'n': ok = c.literal("null"); break;
    default: ok = parse_number(c); break;
  }
  --c.depth;
  return ok;
}

}  // namespace

bool json_valid(std::string_view text) {
  Cursor c{text};
  if (!parse_value(c)) return false;
  c.skip_ws();
  return c.eof();
}

}  // namespace cmtos::obs
