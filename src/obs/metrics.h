// cmtos/obs/metrics.h
//
// The metrics registry: named counters, gauges and histograms with
// free-form labels (per-VC, per-node, per-bench-configuration), snapshot-
// able to JSON.  This is the measurement backbone the orchestration paper
// implies but never shows: every number that used to live in an ad-hoc
// fprintf — TPDU loss counts, blocking times, regulation drops, bench
// headline results — gets a stable name here so benches can emit
// machine-readable output and later perf work can diff runs.
//
// Concurrency: instrument handles returned by the registry are stable for
// the registry's lifetime.  Counter is safe for concurrent increment (the
// threaded buffer path uses it); Gauge uses atomic store/load; Histogram is
// intended for the single-threaded simulation and must not be shared
// across threads without external synchronisation.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace cmtos::obs {

/// Metric labels: ordered key/value pairs.  Part of the metric identity —
/// counter("x", {{"vc","1"}}) and counter("x", {{"vc","2"}}) are distinct
/// instruments.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-layout histogram: 64 power-of-two buckets (upper bound 2^i for
/// bucket i; values <= 1 land in bucket 0) plus exact count/sum/min/max.
/// Enough resolution for order-of-magnitude latency work without
/// per-instrument configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Approximate quantile (bucket upper bound); q in [0,1].
  double quantile(double q) const;
  const std::array<std::int64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// A named collection of instruments.  Lookup-or-create is mutex-guarded
/// and deterministic (instruments serialize in sorted key order); hold the
/// returned reference rather than re-looking-up on hot paths.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Convenience: create-or-update a gauge in one call (bench headline
  /// metrics).
  void set_gauge(const std::string& name, double v, const Labels& labels = {}) {
    gauge(name, labels).set(v);
  }

  std::size_t size() const;
  void clear();

  /// Snapshot as a JSON object: {"meta":{...},"metrics":[...]}.  `meta`
  /// entries (e.g. bench name, run parameters) are emitted as strings.
  std::string to_json(const Labels& meta = {}) const;

  /// Writes to_json() to `path`.  Returns false on I/O failure.
  bool write_json(const std::string& path, const Labels& meta = {}) const;

  /// Process-wide registry the protocol stack publishes into.
  static Registry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  static std::string key_of(const std::string& name, const Labels& labels);
  Entry& find_or_create(const std::string& name, const Labels& labels, Kind kind);

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ CMTOS_GUARDED_BY(mu_);
};

}  // namespace cmtos::obs
