#include "util/rng.h"

#include <cmath>

namespace cmtos {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double acc = 0;
  for (int i = 0; i < 12; ++i) acc += next_double();
  return mean + stddev * (acc - 6.0);
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace cmtos
