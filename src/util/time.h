// cmtos/util/time.h
//
// Time representation used throughout cmtos.
//
// All simulated time is an integer count of nanoseconds since the start of
// the simulation.  Integer (rather than floating point) time keeps the
// discrete-event simulation exactly reproducible across platforms and makes
// event ordering total and deterministic.

#pragma once

#include <cstdint>
#include <string>

namespace cmtos {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A length of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Sentinel meaning "no deadline" / "never".
inline constexpr Time kTimeNever = INT64_MAX;

/// Converts a duration to fractional seconds (for reporting only; never use
/// floating point in protocol or scheduling logic).
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }

/// Converts a duration to fractional milliseconds (for reporting only).
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e6; }

/// Converts fractional seconds to a Duration, rounding to nearest ns.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Renders a time/duration as a compact human-readable string, e.g.
/// "1.500ms", "2.000s", "750ns".
std::string format_time(Duration d);

/// Computes the serialization duration for `bytes` at `bits_per_second`.
/// Rounds up so that a transmission never finishes "early".
constexpr Duration transmission_time(std::int64_t bytes, std::int64_t bits_per_second) {
  if (bits_per_second <= 0) return 0;
  const std::int64_t bits = bytes * 8;
  // ns = bits * 1e9 / bps, rounded up.
  return (bits * kSecond + bits_per_second - 1) / bits_per_second;
}

}  // namespace cmtos
