#include "util/contract.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/sync.h"

namespace cmtos::contract {

namespace {

std::atomic<std::int64_t> g_violations{0};
std::atomic<MetricHook> g_metric_hook{nullptr};

// The handler is installed/uninstalled by tests around scheduler runs, never
// from concurrent violation sites, but the threaded-buffer checks may fire
// from a second thread: guard the std::function with a mutex and invoke a
// copy outside the lock so a handler that itself trips a check cannot
// deadlock.
Mutex g_handler_mu;
Handler g_handler CMTOS_GUARDED_BY(g_handler_mu);

}  // namespace

Handler set_violation_handler(Handler h) {
  const MutexLock lock(g_handler_mu);
  std::swap(g_handler, h);
  return h;
}

void set_metric_hook(MetricHook hook) { g_metric_hook.store(hook, std::memory_order_release); }

std::int64_t violation_count() { return g_violations.load(std::memory_order_relaxed); }

void report_violation(const char* check, const char* expr, const char* file, int line) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (MetricHook hook = g_metric_hook.load(std::memory_order_acquire)) hook(check);

  Handler handler;
  {
    const MutexLock lock(g_handler_mu);
    handler = g_handler;
  }
  if (handler) {
    handler(Violation{check, expr, file, line});
    return;
  }
#if defined(NDEBUG)
  // Release: count (above), log, continue — a single violated invariant must
  // not take down a media service; the obs counter makes it visible.
  CMTOS_ERROR("contract", "violation [%s] %s at %s:%d", check, expr, file, line);
#else
  std::fprintf(stderr, "cmtos contract violation [%s]: %s at %s:%d\n", check, expr, file,
               line);
  std::abort();
#endif
}

}  // namespace cmtos::contract
