// cmtos/util/quarantine.h
//
// Per-peer malformed-PDU quarantine accounting.  A decoder refusal with a
// *valid* checksum means the peer (or something spoofing it) emitted bytes
// that are structurally not a PDU — that is misbehaviour, not line noise,
// and a peer that keeps doing it gets cut off.  Checksum failures are never
// counted here: damaged wire bytes are what an impaired link produces, and
// blaming the peer for them would tear down healthy connections during a
// corruption storm (a CRC-valid structural refusal is a 2^-32 coincidence
// for random damage, so the signal is clean).
//
// The helper is pure bookkeeping — thresholds in, escalation decision out.
// The owning layer (ConnectionManager on the transport side, SessionTable
// on the orchestration side) performs the actual teardown.

#pragma once

#include <cstdint>
#include <map>

namespace cmtos {

class PeerQuarantine {
 public:
  enum class Action : std::uint8_t {
    kNone = 0,      // below the warn threshold: drop the PDU, nothing else
    kWarn = 1,      // warn threshold crossed (exactly once per peer)
    kEscalate = 2,  // escalation threshold crossed: tear the peer down
  };

  explicit PeerQuarantine(std::uint32_t warn_threshold = 4,
                          std::uint32_t escalate_threshold = 16)
      : warn_(warn_threshold), escalate_(escalate_threshold) {}

  /// Records one structurally-invalid (CRC-valid) PDU from `peer` and
  /// returns the action the owner should take.  kWarn and kEscalate each
  /// fire at most once per peer; counts are monotonic — a peer that
  /// escalated stays quarantined for the life of this table.
  Action note_malformed(std::uint32_t peer) {
    Entry& e = peers_[peer];
    ++e.malformed;
    if (!e.escalated && e.malformed >= escalate_) {
      e.escalated = true;
      return Action::kEscalate;
    }
    if (!e.warned && e.malformed >= warn_) {
      e.warned = true;
      return Action::kWarn;
    }
    return Action::kNone;
  }

  /// True once the peer crossed the escalation threshold.  Owners use this
  /// to drop further traffic from the peer before decoding it.
  bool quarantined(std::uint32_t peer) const {
    auto it = peers_.find(peer);
    return it != peers_.end() && it->second.escalated;
  }

  std::int64_t malformed(std::uint32_t peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? 0 : it->second.malformed;
  }

 private:
  struct Entry {
    std::int64_t malformed = 0;
    bool warned = false;
    bool escalated = false;
  };
  std::uint32_t warn_;
  std::uint32_t escalate_;
  std::map<std::uint32_t, Entry> peers_;
};

}  // namespace cmtos
