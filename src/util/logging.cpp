#include "util/logging.h"

#include <cstdio>

namespace cmtos {
namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

void log(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s: ", level_name(level), tag);
  va_list ap;
  va_start(ap, fmt);
  if (g_sink) {
    char buf[512];
    va_list ap2;
    va_copy(ap2, ap);
    std::vsnprintf(buf, sizeof buf, fmt, ap2);
    va_end(ap2);
    g_sink(level, tag, buf);
  }
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace cmtos
