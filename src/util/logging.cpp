#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <memory>

#include "util/sync.h"

namespace cmtos {
namespace {

// The threaded buffer benchmarks and the contract layer may log from a
// second thread, so the level is atomic and the sink is reference-counted
// behind a mutex: log() takes a shared_ptr snapshot and invokes it outside
// the lock, so set_log_sink(nullptr) from one thread cannot destroy a
// std::function another thread is executing.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_sink_mu;
std::shared_ptr<const LogSink> g_sink CMTOS_GUARDED_BY(g_sink_mu);

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  auto next = sink ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
  const MutexLock lock(g_sink_mu);
  g_sink = std::move(next);
}

void log(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Format into one buffer and write the line with a single fputs so
  // concurrent loggers cannot interleave mid-line.
  char msg[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  va_end(ap);

  std::shared_ptr<const LogSink> sink;
  {
    const MutexLock lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink && *sink) (*sink)(level, tag, msg);

  char line[600];
  std::snprintf(line, sizeof line, "[%s] %s: %s\n", level_name(level), tag, msg);
  std::fputs(line, stderr);
}

}  // namespace cmtos
