#include "util/stats.h"

#include <cmath>
#include <cstdio>

namespace cmtos {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0;
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0;
  double acc = 0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  sort_if_needed();
  return samples_.empty() ? 0 : samples_.front();
}

double SampleSet::max() const {
  sort_if_needed();
  return samples_.empty() ? 0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0;
  sort_if_needed();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[std::min(samples_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string SampleSet::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), mean(), percentile(50), percentile(95), percentile(99), max());
  return buf;
}

double RateMeter::event_rate(Time now) const {
  const Duration span = now - window_start_;
  if (span <= 0) return 0;
  return static_cast<double>(events_) / to_seconds(span);
}

double RateMeter::bit_rate(Time now) const {
  const Duration span = now - window_start_;
  if (span <= 0) return 0;
  return static_cast<double>(bytes_ * 8) / to_seconds(span);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::string Histogram::render(int max_bar) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar = static_cast<int>(counts_[i] * max_bar / peak);
    std::snprintf(line, sizeof line, "[%10.3f, %10.3f) %8lld |", bucket_lo(i), bucket_hi(i),
                  static_cast<long long>(counts_[i]));
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace cmtos
