// cmtos/util/wire_hardening.h
//
// Process-wide switch over the adversarial wire defences (DESIGN.md §14):
// receive-path checksum verification, the GBN/reassembly duplicate guards,
// and the per-peer malformed-PDU quarantine.  On by default; byzantine_soak
// --no-hardening turns it off to reproduce the pre-hardening stack, where a
// corruption storm feeds garbage straight into protocol state — the
// contrast run that demonstrates the failure the defences prevent.
//
// Set it once before traffic starts (like the epoch-fencing switch); the
// flag is atomic only so concurrent shard reads stay TSan-clean.

#pragma once

#include <atomic>

namespace cmtos::wire {

inline std::atomic<bool> g_hardening{true};

inline void set_hardening(bool on) { g_hardening.store(on, std::memory_order_relaxed); }
inline bool hardening() { return g_hardening.load(std::memory_order_relaxed); }

}  // namespace cmtos::wire
