// cmtos/util/thread_annotations.h
//
// Compiler-enforced concurrency annotations (DESIGN.md §12).
//
// Two families live here:
//
//  1. Thread-safety attributes — CMTOS_GUARDED_BY / CMTOS_REQUIRES /
//     CMTOS_ACQUIRE / ... — thin wrappers over Clang's -Wthread-safety
//     capability analysis.  Under Clang they expand to the attributes the
//     analysis consumes (and the WERROR build turns findings into hard
//     errors); under GCC they expand to nothing, so local builds are
//     unaffected.  The lockable types that carry the capability side of
//     the contract (cmtos::Mutex, cmtos::MutexLock, cmtos::ThreadRole)
//     live in util/sync.h.
//
//  2. Shard-affinity annotations — CMTOS_SHARD_AFFINE /
//     CMTOS_CONTROL_PLANE — [[clang::annotate]] markers consumed by
//     tools/analyze/cmtos_analyze.py (and visible to any AST tool).  A
//     class marked CMTOS_SHARD_AFFINE is owned by one node's
//     sim::NodeRuntime: all access must happen from that node's events,
//     and cross-node interaction goes through net::Network delivery
//     (DESIGN.md §10).  A function or class marked CMTOS_CONTROL_PLANE is
//     a sanctioned control-shard escape: it runs only inside global
//     (serial-round) events and may therefore reach across shards.
//     Under GCC both expand to nothing.

#pragma once

// -- Clang thread-safety attribute plumbing ---------------------------------

#if defined(__clang__)
#define CMTOS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CMTOS_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a type as a capability ("mutex", "role", ...).
#define CMTOS_CAPABILITY(x) CMTOS_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define CMTOS_SCOPED_CAPABILITY CMTOS_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define CMTOS_GUARDED_BY(x) CMTOS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define CMTOS_PT_GUARDED_BY(x) CMTOS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define CMTOS_REQUIRES(...) \
  CMTOS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define CMTOS_ACQUIRE(...) \
  CMTOS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define CMTOS_RELEASE(...) \
  CMTOS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `b`.
#define CMTOS_TRY_ACQUIRE(...) \
  CMTOS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking entry points).
#define CMTOS_EXCLUDES(...) CMTOS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis, no runtime effect) that the capability is held.
#define CMTOS_ASSERT_CAPABILITY(x) CMTOS_THREAD_ANNOTATION__(assert_capability(x))

/// Accessor returning a reference to the named capability.
#define CMTOS_RETURN_CAPABILITY(x) CMTOS_THREAD_ANNOTATION__(lock_returned(x))

/// Ordering hint: this capability is acquired before the listed ones.
#define CMTOS_ACQUIRED_BEFORE(...) \
  CMTOS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Escape hatch for functions the analysis cannot model.  Every use needs a
/// comment explaining why the discipline holds anyway.
#define CMTOS_NO_THREAD_SAFETY_ANALYSIS \
  CMTOS_THREAD_ANNOTATION__(no_thread_safety_analysis)

// -- Shard-affinity annotations (consumed by tools/analyze) -----------------

#if defined(__clang__)
/// State owned by one node's NodeRuntime; cross-shard access is a bug.
#define CMTOS_SHARD_AFFINE [[clang::annotate("cmtos::shard_affine")]]
/// Sanctioned control-shard escape: runs only in global (serial) events.
#define CMTOS_CONTROL_PLANE [[clang::annotate("cmtos::control_plane")]]
#else
#define CMTOS_SHARD_AFFINE
#define CMTOS_CONTROL_PLANE
#endif
