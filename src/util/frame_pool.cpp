#include "util/frame_pool.h"

#include <algorithm>
#include <cstring>

#include "util/contract.h"
#include "util/sync.h"

namespace cmtos {

namespace {
// Size classes: powers of two from 1 KiB to 1 MiB.  Larger leases become
// one-off heap frames (counted as misses); the media path's OSDU sizes
// land comfortably inside the range.
constexpr int kMinClassShift = 10;
constexpr int kMaxClassShift = 20;
constexpr int kNumClasses = kMaxClassShift - kMinClassShift + 1;
// Magazine bounds: above the cap, half the magazine flushes to the depot;
// on an empty magazine, up to half a cap's worth is pulled back.
constexpr std::size_t kMagazineCap = 64;

/// Smallest class whose capacity covers `n`, or -1 when oversize.
int class_for(std::size_t n) {
  for (int c = 0; c < kNumClasses; ++c) {
    if ((std::size_t{1} << (kMinClassShift + c)) >= n) return c;
  }
  return -1;
}
}  // namespace

struct FramePool::Depot {
  Mutex mu;
  std::vector<FrameBuf*> free[kNumClasses] CMTOS_GUARDED_BY(mu);
};

struct FramePool::Magazine {
  FramePool* owner = nullptr;
  std::vector<FrameBuf*> free[kNumClasses];

  void flush() {
    if (owner == nullptr) return;
    Depot& depot = *owner->depot_;
    const MutexLock lock(depot.mu);
    for (int c = 0; c < kNumClasses; ++c) {
      auto& dst = depot.free[c];
      dst.insert(dst.end(), free[c].begin(), free[c].end());
      free[c].clear();
    }
  }
  ~Magazine() { flush(); }
};

void FrameBuf::release() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (pool_ != nullptr) {
    pool_->release(this);
  } else {
    delete this;  // adopted vector or oversize one-off
  }
}

PayloadView FrameLease::freeze(std::size_t len) && {
  CMTOS_DCHECK(frame_ != nullptr);
  CMTOS_DCHECK(len <= frame_->capacity());
  FrameBuf* f = frame_;
  frame_ = nullptr;
  // The lease's reference transfers to the view.
  return PayloadView(f, 0, len, /*add_ref=*/false);
}

void FrameLease::drop() noexcept {
  if (frame_ != nullptr) {
    frame_->release();
    frame_ = nullptr;
  }
}

PayloadView PayloadView::adopt(std::vector<std::uint8_t>&& bytes) {
  if (bytes.empty()) return {};
  auto* f = new FrameBuf;
  f->storage_ = std::move(bytes);
  f->pool_ = nullptr;
  f->refs_.store(1, std::memory_order_relaxed);
  FramePool::global().adoptions_.fetch_add(1, std::memory_order_relaxed);
  return PayloadView(f, 0, f->storage_.size(), /*add_ref=*/false);
}

PayloadView PayloadView::copy_of(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return {};
  auto& pool = FramePool::global();
  FrameLease lease = pool.lease(bytes.size());
  std::memcpy(lease.data(), bytes.data(), bytes.size());
  pool.copies_.fetch_add(1, std::memory_order_relaxed);
  pool.copied_bytes_.fetch_add(static_cast<std::int64_t>(bytes.size()),
                               std::memory_order_relaxed);
  return std::move(lease).freeze(bytes.size());
}

PayloadView PayloadView::subview(std::size_t off, std::size_t len) const {
  CMTOS_DCHECK(off + len <= len_);
  if (frame_ == nullptr || len == 0) {
    // A zero-length slice needs no frame pin (zero-length OSDUs exist).
    return {};
  }
  return PayloadView(frame_, off_ + off, len, /*add_ref=*/true);
}

PayloadView PayloadView::extend(std::size_t len) const {
  if (len == 0) return {};
  CMTOS_DCHECK(frame_ != nullptr);
  CMTOS_DCHECK(off_ + len <= frame_->capacity());
  return PayloadView(frame_, off_, len, /*add_ref=*/true);
}

FramePool::FramePool() : depot_(new Depot) {}

FramePool::~FramePool() {
  // Only non-global pools are ever destroyed (global() leaks by design);
  // their frames all sit in the depot because magazines serve the global
  // instance alone.  The depot lock is still taken for the sweep: a
  // release() racing destruction is already UB, but holding mu keeps the
  // declared guarded_by discipline intact on every depot access.
  if (depot_ == nullptr) return;
  {
    const MutexLock lock(depot_->mu);
    for (auto& cls : depot_->free) {
      for (FrameBuf* f : cls) delete f;
      cls.clear();
    }
  }
  delete depot_;
}

FramePool& FramePool::global() {
  // Leaked on purpose: shard worker threads flush their magazines at
  // thread exit, which must never race static destruction of the depot.
  static FramePool* pool = new FramePool;
  return *pool;
}

FramePool::Magazine& FramePool::magazine() {
  thread_local Magazine mag;
  if (mag.owner != this) {
    mag.flush();
    mag.owner = this;
  }
  return mag;
}

FrameLease FramePool::lease(std::size_t min_bytes) {
  const int c = class_for(min_bytes);
  if (c < 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto* f = new FrameBuf;
    f->storage_.resize(min_bytes);
    f->pool_ = nullptr;  // oversize: freed, not recycled
    f->refs_.store(1, std::memory_order_relaxed);
    return FrameLease(f);
  }

  FrameBuf* f = nullptr;
  const bool use_magazine = this == &global();
  if (use_magazine) {
    Magazine& mag = magazine();
    auto& shelf = mag.free[static_cast<std::size_t>(c)];
    if (!shelf.empty()) {
      f = shelf.back();
      shelf.pop_back();
    } else {
      // Refill half a magazine from the depot in one lock hold.
      const MutexLock lock(depot_->mu);
      auto& src = depot_->free[static_cast<std::size_t>(c)];
      const std::size_t take = std::min(src.size(), kMagazineCap / 2);
      if (take > 0) {
        shelf.insert(shelf.end(), src.end() - static_cast<std::ptrdiff_t>(take), src.end());
        src.resize(src.size() - take);
        f = shelf.back();
        shelf.pop_back();
      }
    }
  } else {
    const MutexLock lock(depot_->mu);
    auto& src = depot_->free[static_cast<std::size_t>(c)];
    if (!src.empty()) {
      f = src.back();
      src.pop_back();
    }
  }

  if (f != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    f = new FrameBuf;
    f->storage_.resize(std::size_t{1} << (kMinClassShift + c));
    f->pool_ = this;
    f->size_class_ = static_cast<std::uint8_t>(c);
  }
  f->refs_.store(1, std::memory_order_relaxed);
  return FrameLease(f);
}

void FramePool::release(FrameBuf* f) {
  const auto c = static_cast<std::size_t>(f->size_class_);
  if (this == &global()) {
    Magazine& mag = magazine();
    auto& shelf = mag.free[c];
    shelf.push_back(f);
    if (shelf.size() > kMagazineCap) {
      // Flush the older half to the depot in one lock hold.
      const MutexLock lock(depot_->mu);
      auto& dst = depot_->free[c];
      dst.insert(dst.end(), shelf.begin(),
                 shelf.begin() + static_cast<std::ptrdiff_t>(kMagazineCap / 2));
      shelf.erase(shelf.begin(), shelf.begin() + static_cast<std::ptrdiff_t>(kMagazineCap / 2));
    }
  } else {
    const MutexLock lock(depot_->mu);
    depot_->free[c].push_back(f);
  }
}

FramePoolStats FramePool::stats() const {
  FramePoolStats s;
  s.pool_hits = hits_.load(std::memory_order_relaxed);
  s.pool_misses = misses_.load(std::memory_order_relaxed);
  s.adoptions = adoptions_.load(std::memory_order_relaxed);
  s.copies = copies_.load(std::memory_order_relaxed);
  s.copied_bytes = copied_bytes_.load(std::memory_order_relaxed);
  return s;
}

void FramePool::count_copy(std::size_t bytes) {
  copies_.fetch_add(1, std::memory_order_relaxed);
  copied_bytes_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
}

void FramePool::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  adoptions_.store(0, std::memory_order_relaxed);
  copies_.store(0, std::memory_order_relaxed);
  copied_bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace cmtos
