// cmtos/util/contract.h
//
// The contract/invariant layer: machine-checked statements of the protocol
// invariants the paper relies on but never writes down — the VC lifecycle
// (connect -> prime -> start -> stop -> release), ring-index and
// episode-accounting consistency in the shared circular buffers, LLO group
// atomicity, and scheduler event ordering.
//
// Three macros, one policy split:
//
//   CMTOS_ASSERT(cond, check)     always compiled in.  `check` is a stable
//                                 dotted name ("vc.transition") used as the
//                                 metric label.
//   CMTOS_INVARIANT(cond, check)  alias of CMTOS_ASSERT, used for state
//                                 invariants rather than preconditions (the
//                                 distinction documents intent at the site).
//   CMTOS_DCHECK(cond)            debug builds only; compiled out (condition
//                                 unevaluated) under NDEBUG.  For hot-path
//                                 checks too expensive to ship.
//
// Violation policy: debug builds (!NDEBUG) print the failing site and
// abort().  Release builds count the violation — through the handler hook,
// which cmtos_obs wires to the global metrics registry as
// `contract.violations{check=...}` — log it, and continue.  Tests override
// the whole policy with set_violation_handler() to observe violations
// without dying.

#pragma once

#include <cstdint>
#include <functional>

namespace cmtos::contract {

/// One contract violation, as handed to the handler.
struct Violation {
  const char* check;  // stable site name, e.g. "vc.transition"
  const char* expr;   // stringified failing condition
  const char* file;
  int line;
};

/// Handler invoked on every violation *instead of* the default action
/// (abort in debug, log in release).  Returning normally continues
/// execution.  Returns the previously installed handler; install nullptr
/// to restore the default policy.
using Handler = std::function<void(const Violation&)>;
Handler set_violation_handler(Handler h);

/// Low-level metric hook, called on every violation *in addition to* the
/// handler/default action.  cmtos_obs installs one that bumps
/// `contract.violations{check=...}` in the global registry; anything that
/// links the obs library gets release-mode violation counters for free.
using MetricHook = void (*)(const char* check);
void set_metric_hook(MetricHook hook);

/// Total violations reported since process start (any check).
std::int64_t violation_count();

/// Called by the macros.  Not for direct use.
void report_violation(const char* check, const char* expr, const char* file, int line);

}  // namespace cmtos::contract

#define CMTOS_ASSERT(cond, check)                                              \
  do {                                                                         \
    if (!(cond))                                                               \
      ::cmtos::contract::report_violation(check, #cond, __FILE__, __LINE__);   \
  } while (0)

#define CMTOS_INVARIANT(cond, check) CMTOS_ASSERT(cond, check)

#if defined(NDEBUG)
#define CMTOS_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define CMTOS_DCHECK(cond) CMTOS_ASSERT(cond, "dcheck")
#endif
