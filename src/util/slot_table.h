// Flat, cache-friendly containers for the steady-state hot paths.
//
// FlatMap<K, V>  — open-addressed hash map: contiguous slab of entries plus a
//                  power-of-two u32 bucket index (linear probing, tombstones).
//                  Lookup is O(1) with zero steady-state allocation; the slab
//                  never shrinks, so churn at a stable population reuses slots
//                  instead of hitting the allocator. Iteration is slab order:
//                  a pure function of the op sequence, hence byte-identical
//                  across --threads runs, but NOT key order like std::map.
//
// SlotTable<T>   — dense slab with generation-stamped handles. A Handle keeps
//                  (index, generation); erase bumps the slot generation, so a
//                  stale handle is detectable (get() returns nullptr) rather
//                  than silently aliasing the slot's next occupant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace cmtos {

namespace detail {

// splitmix64 finalizer: cheap, and strong enough that linear probing over a
// power-of-two table does not cluster on the structured keys we use
// (node<<32|seq VC ids, packed link keys, small dense session ids).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

}  // namespace detail

// Default hasher: integral/enum keys and pairs thereof. Anything else needs a
// custom hasher supplied as the FlatMap Hash parameter.
template <class K, class = void>
struct FlatHash;

template <class K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K> || std::is_enum_v<K>>> {
  std::uint64_t operator()(K k) const noexcept {
    return detail::mix64(static_cast<std::uint64_t>(k));
  }
};

template <class A, class B>
struct FlatHash<std::pair<A, B>, void> {
  std::uint64_t operator()(const std::pair<A, B>& p) const noexcept {
    return detail::hash_combine(FlatHash<A>{}(p.first), FlatHash<B>{}(p.second));
  }
};

template <class K, class V, class Hash = FlatHash<K>>
class FlatMap {
  using Entry = std::optional<std::pair<const K, V>>;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;

 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<const K, V>;

  template <bool Const>
  class Iter {
   public:
    using value_type = std::pair<const K, V>;

   private:
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

   public:
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using reference = Ref;
    using pointer = Ptr;

    Iter() = default;
    Iter(MapT* m, std::size_t i) : m_(m), i_(i) { skip(); }
    // const_iterator from iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : m_(o.m_), i_(o.i_) {}

    Ref operator*() const { return *m_->slab_[i_]; }
    Ptr operator->() const { return &*m_->slab_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const Iter& a, const Iter& b) { return a.i_ == b.i_; }
    friend bool operator!=(const Iter& a, const Iter& b) { return a.i_ != b.i_; }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;
    void skip() {
      while (i_ < m_->slab_.size() && !m_->slab_[i_].has_value()) ++i_;
    }
    MapT* m_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  FlatMap(FlatMap&&) = default;
  FlatMap& operator=(FlatMap&&) = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slab_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slab_.size()); }

  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  void reserve(std::size_t n) {
    slab_.reserve(n);
    if (n * 10 >= index_.size() * 7) rehash(n);
  }

  bool contains(const K& key) const { return find_slot(key) != kEmpty; }

  iterator find(const K& key) {
    const std::uint32_t s = find_slot(key);
    return s == kEmpty ? end() : iterator(this, s);
  }
  const_iterator find(const K& key) const {
    const std::uint32_t s = find_slot(key);
    return s == kEmpty ? end() : const_iterator(this, s);
  }

  V& at(const K& key) {
    const std::uint32_t s = find_slot(key);
    if (s == kEmpty) throw std::out_of_range("FlatMap::at");
    return slab_[s]->second;
  }
  const V& at(const K& key) const {
    const std::uint32_t s = find_slot(key);
    if (s == kEmpty) throw std::out_of_range("FlatMap::at");
    return slab_[s]->second;
  }

  V& operator[](const K& key) {
    return try_emplace(key).first->second;
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    maybe_rehash();
    auto [bucket, existing] = probe(key);
    if (existing != kEmpty) return {iterator(this, existing), false};
    const std::uint32_t s = take_slot(key, std::forward<Args>(args)...);
    claim_bucket(bucket, s);
    return {iterator(this, s), true};
  }

  template <class... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    return try_emplace(key, std::forward<Args>(args)...);
  }

  std::pair<iterator, bool> insert(value_type v) {
    return try_emplace(v.first, std::move(v.second));
  }

  template <class M>
  std::pair<iterator, bool> insert_or_assign(const K& key, M&& value) {
    auto r = try_emplace(key, std::forward<M>(value));
    if (!r.second) r.first->second = std::forward<M>(value);
    return r;
  }

  std::size_t erase(const K& key) {
    const std::uint32_t s = find_slot(key);
    if (s == kEmpty) return 0;
    erase_slot(s);
    return 1;
  }

  iterator erase(iterator it) {
    const std::size_t i = it.i_;
    erase_slot(static_cast<std::uint32_t>(i));
    return iterator(this, i);  // constructor skips to next live entry
  }

  void clear() {
    slab_.clear();
    free_.clear();
    index_.assign(index_.size(), kEmpty);
    live_ = 0;
    used_ = 0;
  }

 private:
  // Returns {insertion bucket, existing slab slot or kEmpty}. The insertion
  // bucket is the first tombstone seen on the probe path (reuse), else the
  // terminating empty bucket.
  std::pair<std::size_t, std::uint32_t> probe(const K& key) const {
    const std::size_t mask = index_.size() - 1;
    std::size_t b = static_cast<std::size_t>(Hash{}(key)) & mask;
    std::size_t insert_at = index_.size();  // sentinel: none yet
    for (;; b = (b + 1) & mask) {
      const std::uint32_t e = index_[b];
      if (e == kEmpty) {
        return {insert_at == index_.size() ? b : insert_at, kEmpty};
      }
      if (e == kTombstone) {
        if (insert_at == index_.size()) insert_at = b;
        continue;
      }
      if (slab_[e]->first == key) return {b, e};
    }
  }

  std::uint32_t find_slot(const K& key) const {
    if (live_ == 0) return kEmpty;
    const std::size_t mask = index_.size() - 1;
    std::size_t b = static_cast<std::size_t>(Hash{}(key)) & mask;
    for (;; b = (b + 1) & mask) {
      const std::uint32_t e = index_[b];
      if (e == kEmpty) return kEmpty;
      if (e != kTombstone && slab_[e]->first == key) return e;
    }
  }

  template <class... Args>
  std::uint32_t take_slot(const K& key, Args&&... args) {
    std::uint32_t s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      s = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    slab_[s].emplace(std::piecewise_construct, std::forward_as_tuple(key),
                     std::forward_as_tuple(std::forward<Args>(args)...));
    ++live_;
    return s;
  }

  void claim_bucket(std::size_t bucket, std::uint32_t slot) {
    if (index_[bucket] == kEmpty) ++used_;  // tombstone reuse keeps used_ flat
    index_[bucket] = slot;
  }

  void erase_slot(std::uint32_t s) {
    auto [bucket, existing] = probe(slab_[s]->first);
    // existing == s by construction; retire the bucket and the slab slot.
    index_[bucket] = kTombstone;
    slab_[s].reset();
    free_.push_back(s);
    --live_;
  }

  void maybe_rehash() {
    if (index_.empty() || (used_ + 1) * 10 >= index_.size() * 7) {
      rehash(live_ + 1);
    }
  }

  void rehash(std::size_t want_live) {
    std::size_t cap = 16;
    while (cap * 7 < want_live * 20) cap <<= 1;  // target <= 0.35 load on rebuild
    index_.assign(cap, kEmpty);
    used_ = 0;
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < slab_.size(); ++i) {
      if (!slab_[i].has_value()) continue;
      std::size_t b = static_cast<std::size_t>(Hash{}(slab_[i]->first)) & mask;
      while (index_[b] != kEmpty) b = (b + 1) & mask;
      index_[b] = static_cast<std::uint32_t>(i);
      ++used_;
    }
  }

  std::vector<Entry> slab_;
  std::vector<std::uint32_t> free_;   // LIFO slab-slot recycling (deterministic)
  std::vector<std::uint32_t> index_;  // power-of-two open-addressed buckets
  std::size_t live_ = 0;
  std::size_t used_ = 0;  // live + tombstones occupying index buckets
};

// Dense slab with generation-stamped handles. Insert returns a Handle; a
// handle outlives its slot only in the detectable sense — after erase, get()
// on the stale handle yields nullptr because the slot generation moved on.
template <class T>
class SlotTable {
  static constexpr std::uint32_t kInvalidIdx = 0xffffffffu;

 public:
  struct Handle {
    std::uint32_t idx = kInvalidIdx;
    std::uint32_t gen = 0;
    bool valid() const noexcept { return idx != kInvalidIdx; }
    friend bool operator==(const Handle&, const Handle&) = default;
    // Packs to a nonzero 64-bit id (0 stays "no handle"); round-trips exactly.
    std::uint64_t pack() const noexcept {
      return (static_cast<std::uint64_t>(gen) << 32) |
             (static_cast<std::uint64_t>(idx) + 1);
    }
    static Handle unpack(std::uint64_t id) noexcept {
      if ((id & 0xffffffffull) == 0) return Handle{};
      return Handle{static_cast<std::uint32_t>((id & 0xffffffffull) - 1),
                    static_cast<std::uint32_t>(id >> 32)};
    }
  };

  template <class... Args>
  Handle emplace(Args&&... args) {
    std::uint32_t i;
    if (!free_.empty()) {
      i = free_.back();
      free_.pop_back();
    } else {
      i = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      gens_.push_back(1);
    }
    slots_[i].emplace(std::forward<Args>(args)...);
    ++live_;
    return Handle{i, gens_[i]};
  }

  T* get(Handle h) noexcept {
    if (h.idx >= slots_.size() || gens_[h.idx] != h.gen) return nullptr;
    return slots_[h.idx].has_value() ? &*slots_[h.idx] : nullptr;
  }
  const T* get(Handle h) const noexcept {
    if (h.idx >= slots_.size() || gens_[h.idx] != h.gen) return nullptr;
    return slots_[h.idx].has_value() ? &*slots_[h.idx] : nullptr;
  }

  bool erase(Handle h) {
    if (get(h) == nullptr) return false;
    slots_[h.idx].reset();
    ++gens_[h.idx];  // stale handles now miss on the generation check
    free_.push_back(h.idx);
    --live_;
    return true;
  }

  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  void clear() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) {
        slots_[i].reset();
        ++gens_[i];
        free_.push_back(static_cast<std::uint32_t>(i));
      }
    }
    live_ = 0;
  }

  // Slab-order visit of live slots: f(Handle, T&). Safe against erasing the
  // visited slot from inside f (slab never reorders).
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) {
        f(Handle{static_cast<std::uint32_t>(i), gens_[i]}, *slots_[i]);
      }
    }
  }
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) {
        f(Handle{static_cast<std::uint32_t>(i), gens_[i]}, *slots_[i]);
      }
    }
  }

 private:
  std::vector<std::optional<T>> slots_;
  std::vector<std::uint32_t> gens_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace cmtos
