#include "util/time.h"

#include <cstdio>

namespace cmtos {

std::string format_time(Duration d) {
  char buf[64];
  const bool neg = d < 0;
  const std::int64_t a = neg ? -d : d;
  if (a >= kSecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fs", neg ? "-" : "", static_cast<double>(a) / kSecond);
  } else if (a >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fms", neg ? "-" : "", static_cast<double>(a) / kMillisecond);
  } else if (a >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fus", neg ? "-" : "", static_cast<double>(a) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof buf, "%s%lldns", neg ? "-" : "", static_cast<long long>(a));
  }
  return buf;
}

}  // namespace cmtos
