// cmtos/util/logging.h
//
// Minimal leveled logger.  Protocol modules log through this so tests and
// benches can silence or capture output.  Thread-safe: the level is atomic,
// the sink is swapped under a mutex and invoked via a snapshot (so it can
// be replaced while another thread logs), and each line is written to
// stderr with a single call so concurrent lines never interleave.

#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace cmtos {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Optional observer for formatted log lines.  When set, every emitted line
/// (those at or above the threshold) is also handed to the sink as
/// (level, tag, formatted message).  The obs tracer installs one to route
/// log lines into the event trace; stderr output is unaffected.  Pass
/// nullptr to uninstall.
using LogSink = std::function<void(LogLevel, const char* tag, const char* msg)>;
void set_log_sink(LogSink sink);

/// printf-style log statement.  `tag` names the subsystem ("transport",
/// "llo", ...).
void log(LogLevel level, const char* tag, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

#define CMTOS_LOG(level, tag, ...)                                  \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::cmtos::log_level())) \
      ::cmtos::log(level, tag, __VA_ARGS__);                        \
  } while (0)

#define CMTOS_TRACE(tag, ...) CMTOS_LOG(::cmtos::LogLevel::kTrace, tag, __VA_ARGS__)
#define CMTOS_DEBUG(tag, ...) CMTOS_LOG(::cmtos::LogLevel::kDebug, tag, __VA_ARGS__)
#define CMTOS_INFO(tag, ...) CMTOS_LOG(::cmtos::LogLevel::kInfo, tag, __VA_ARGS__)
#define CMTOS_WARN(tag, ...) CMTOS_LOG(::cmtos::LogLevel::kWarn, tag, __VA_ARGS__)
#define CMTOS_ERROR(tag, ...) CMTOS_LOG(::cmtos::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace cmtos
