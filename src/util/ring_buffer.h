// cmtos/util/ring_buffer.h
//
// Fixed-capacity single-producer / single-consumer ring buffer.
//
// This is the data structure behind the paper's §3.7 shared-circular-buffer
// transport data interface: the application thread and the protocol thread
// share a ring of OSDU slots; "data location is implicit in the value of
// pointers associated with the shared buffers, and no data copying is
// involved".  In the discrete-event simulation producer/consumer run in the
// same OS thread, so this class is not internally synchronised; a real
// std::thread + semaphore wrapper for the A3 micro-benchmark lives in
// transport/buffer_interface.h.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/contract.h"

namespace cmtos {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    CMTOS_ASSERT(capacity > 0, "ring.capacity");
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == slots_.size(); }

  /// Appends an element.  Precondition: !full().
  void push(T value) {
    CMTOS_ASSERT(!full(), "ring.push_full");
    slots_[tail_] = std::move(value);
    tail_ = advance(tail_);
    ++count_;
    CMTOS_DCHECK(indices_consistent());
  }

  /// Removes and returns the oldest element.  Precondition: !empty().
  T pop() {
    CMTOS_ASSERT(!empty(), "ring.pop_empty");
    T v = std::move(slots_[head_]);
    head_ = advance(head_);
    --count_;
    CMTOS_DCHECK(indices_consistent());
    return v;
  }

  /// Returns a reference to the oldest element without removing it.
  const T& front() const {
    CMTOS_ASSERT(!empty(), "ring.front_empty");
    return slots_[head_];
  }
  T& front() {
    CMTOS_ASSERT(!empty(), "ring.front_empty");
    return slots_[head_];
  }

  /// Drops the newest (most recently pushed) element.  This implements the
  /// paper's drop-at-source compensation: "all such discards are performed
  /// at the source by incrementing the source shared buffer pointer", which
  /// lets the producer "immediately insert another OSDU and thus overwrite
  /// the previous one before it is sent".  Precondition: !empty().
  T pop_newest() {
    CMTOS_ASSERT(!empty(), "ring.pop_newest_empty");
    tail_ = retreat(tail_);
    --count_;
    CMTOS_DCHECK(indices_consistent());
    return std::move(slots_[tail_]);
  }

  /// Discards all contents (the Orch.Prime / stop-seek-restart flush).
  void clear() {
    while (!empty()) (void)pop();
  }

 private:
  std::size_t advance(std::size_t i) const { return i + 1 == slots_.size() ? 0 : i + 1; }
  std::size_t retreat(std::size_t i) const { return i == 0 ? slots_.size() - 1 : i - 1; }

  /// Ring-index identity: the occupied count always equals the head-to-tail
  /// distance (mod capacity), with count==capacity <=> full wraparound.
  bool indices_consistent() const {
    const std::size_t cap = slots_.size();
    return head_ < cap && tail_ < cap && count_ <= cap &&
           (tail_ + cap - head_) % cap == count_ % cap;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace cmtos
