// cmtos/util/frame_pool.h
//
// Zero-copy payload substrate for the two-world data plane (DESIGN.md
// "Two-world data plane"): media payload bytes are written once, into a
// pooled refcounted FrameBuf, and every later stage — segmentation, the
// NAK retain map, link transit, reassembly, in-order delivery — holds a
// PayloadView (frame + offset + length).  Segmentation and reassembly
// become index arithmetic instead of memcpy, and the steady-state media
// path recycles frames instead of touching the heap.  Control-plane code
// keeps its ordinary vector idioms; nothing here is used there.
//
// Threading: a view created on the source shard is released on the sink
// shard, so the frame refcount is atomic.  Allocation and release go
// through per-thread magazines; the shared depot mutex is taken only when
// a magazine over- or underflows (a cold, amortised path), so the
// steady-state media path acquires no locks.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cmtos {

class FramePool;
class PayloadView;
class FrameLease;

/// Pool statistics.  Plain atomics, deliberately NOT published to the obs
/// registry: the hit/miss split depends on cross-shard free timing and
/// would differ across --threads counts, breaking the byte-identical soak
/// snapshots (tests/determinism_check.py).  Benches and tests read them
/// directly via FramePool::stats().
struct FramePoolStats {
  std::int64_t pool_hits = 0;     // leases served from a magazine or the depot
  std::int64_t pool_misses = 0;   // leases that fell back to heap allocation
  std::int64_t adoptions = 0;     // heap vectors wrapped via PayloadView::adopt
  std::int64_t copies = 0;        // pool-backed copies (copy_of / gather fallback)
  std::int64_t copied_bytes = 0;  // bytes moved by those copies
};

/// One pooled payload buffer.  Never handled directly by protocol code:
/// FrameLease writes it, PayloadView reads it, the pool recycles it when
/// the last view drops.
class FrameBuf {
 public:
  std::uint8_t* data() { return storage_.data(); }
  const std::uint8_t* data() const { return storage_.data(); }
  std::size_t capacity() const { return storage_.size(); }

 private:
  friend class FramePool;
  friend class PayloadView;
  friend class FrameLease;

  void add_ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  /// Returns the frame to its pool (or frees it) when the last ref drops.
  void release();

  std::vector<std::uint8_t> storage_;
  std::atomic<std::uint32_t> refs_{0};
  FramePool* pool_ = nullptr;  // home pool; nullptr = one-off (adopted/oversize)
  std::uint8_t size_class_ = 0;
};

/// An immutable, refcounted slice of a FrameBuf.  Cheap to copy (one
/// relaxed atomic increment), cheap to subdivide (subview is pure index
/// arithmetic) and safe to hand across shards.  The vector-compatible
/// surface (size/empty/begin/end/operator[]/==) keeps call sites and
/// tests unchanged.
class PayloadView {
 public:
  PayloadView() noexcept = default;
  PayloadView(const PayloadView& o) noexcept : frame_(o.frame_), off_(o.off_), len_(o.len_) {
    if (frame_ != nullptr) frame_->add_ref();
  }
  PayloadView(PayloadView&& o) noexcept : frame_(o.frame_), off_(o.off_), len_(o.len_) {
    o.frame_ = nullptr;
    o.off_ = 0;
    o.len_ = 0;
  }
  PayloadView& operator=(const PayloadView& o) noexcept {
    if (this != &o) {
      if (o.frame_ != nullptr) o.frame_->add_ref();
      reset();
      frame_ = o.frame_;
      off_ = o.off_;
      len_ = o.len_;
    }
    return *this;
  }
  PayloadView& operator=(PayloadView&& o) noexcept {
    if (this != &o) {
      reset();
      frame_ = o.frame_;
      off_ = o.off_;
      len_ = o.len_;
      o.frame_ = nullptr;
      o.off_ = 0;
      o.len_ = 0;
    }
    return *this;
  }
  ~PayloadView() { reset(); }

  /// Wraps an existing heap vector without copying (the compat path for
  /// submit(vector) callers).  One frame-header allocation; the vector's
  /// storage is freed when the last view drops.
  static PayloadView adopt(std::vector<std::uint8_t>&& bytes);

  /// Pool-backed copy of `bytes`; counted in FramePoolStats::copies.
  static PayloadView copy_of(std::span<const std::uint8_t> bytes);

  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }
  const std::uint8_t* data() const noexcept {
    return frame_ != nullptr ? frame_->data() + off_ : nullptr;
  }
  std::span<const std::uint8_t> span() const noexcept { return {data(), len_}; }
  operator std::span<const std::uint8_t>() const noexcept { return span(); }
  const std::uint8_t* begin() const noexcept { return data(); }
  const std::uint8_t* end() const noexcept { return data() + len_; }
  std::uint8_t operator[](std::size_t i) const noexcept { return data()[i]; }

  /// Zero-copy sub-range sharing (and pinning) the same frame.
  PayloadView subview(std::size_t off, std::size_t len) const;

  /// A view over the same frame starting where this view starts, `len`
  /// bytes long.  `len` may exceed this view's own length (but not the
  /// frame capacity): reassembly re-joins contiguous fragments of one
  /// frame with it, turning an OSDU gather into index arithmetic.
  PayloadView extend(std::size_t len) const;

  /// The underlying frame (nullptr when empty) and the offset into it.
  /// Reassembly uses these to recognise fragments of one frame and
  /// re-join them without a gather copy.
  const FrameBuf* frame() const noexcept { return frame_; }
  std::size_t offset() const noexcept { return off_; }

  std::vector<std::uint8_t> to_vector() const { return {begin(), end()}; }

  void reset() noexcept {
    if (frame_ != nullptr) frame_->release();
    frame_ = nullptr;
    off_ = 0;
    len_ = 0;
  }

  friend bool operator==(const PayloadView& a, const PayloadView& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const PayloadView& a, const std::vector<std::uint8_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  friend class FramePool;
  friend class FrameLease;
  PayloadView(FrameBuf* f, std::size_t off, std::size_t len, bool add_ref) noexcept
      : frame_(f), off_(static_cast<std::uint32_t>(off)), len_(static_cast<std::uint32_t>(len)) {
    if (add_ref && frame_ != nullptr) frame_->add_ref();
  }

  FrameBuf* frame_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

/// Exclusive writable handle on a pooled frame: the media source writes
/// the payload bytes once, then freezes the frame into an immutable
/// PayloadView.  Dropping an unfrozen lease returns the frame unused.
class FrameLease {
 public:
  FrameLease() noexcept = default;
  FrameLease(const FrameLease&) = delete;
  FrameLease& operator=(const FrameLease&) = delete;
  FrameLease(FrameLease&& o) noexcept : frame_(o.frame_) { o.frame_ = nullptr; }
  FrameLease& operator=(FrameLease&& o) noexcept {
    if (this != &o) {
      drop();
      frame_ = o.frame_;
      o.frame_ = nullptr;
    }
    return *this;
  }
  ~FrameLease() { drop(); }

  explicit operator bool() const noexcept { return frame_ != nullptr; }
  std::uint8_t* data() noexcept { return frame_ != nullptr ? frame_->data() : nullptr; }
  std::size_t capacity() const noexcept { return frame_ != nullptr ? frame_->capacity() : 0; }

  /// Freezes the first `len` bytes into an immutable view, consuming the
  /// lease.  `len` must not exceed capacity().
  PayloadView freeze(std::size_t len) &&;

 private:
  friend class FramePool;
  explicit FrameLease(FrameBuf* f) noexcept : frame_(f) {}
  void drop() noexcept;

  FrameBuf* frame_ = nullptr;
};

/// Size-classed frame pool (powers of two, 1 KiB .. 1 MiB; larger leases
/// are one-off heap frames, counted as misses).  Per-thread magazines
/// front a mutex-guarded depot; see the header comment for the locking
/// story.  The process-wide instance (global()) is intentionally leaked at
/// exit so shard threads and static-destruction order cannot race it.
class FramePool {
 public:
  FramePool();
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  static FramePool& global();

  /// A writable frame with capacity >= min_bytes.
  FrameLease lease(std::size_t min_bytes);

  FramePoolStats stats() const;
  /// Zeroes the counters (benches/tests isolate measurement windows).
  void reset_stats();

  /// Counts an explicit data-path copy performed by a caller (e.g. the
  /// reassembly gather fallback), so every media-byte copy shows up in
  /// stats() regardless of who performed it.
  void count_copy(std::size_t bytes);

 private:
  friend class FrameBuf;
  friend class PayloadView;
  friend class FrameLease;

  struct Depot;
  struct Magazine;

  void release(FrameBuf* f);
  Magazine& magazine();

  Depot* depot_ = nullptr;  // created lazily, owned

  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> adoptions_{0};
  std::atomic<std::int64_t> copies_{0};
  std::atomic<std::int64_t> copied_bytes_{0};
};

}  // namespace cmtos
