// cmtos/util/stats.h
//
// Measurement helpers used by the transport QoS monitor, the orchestration
// SyncMeter and the benchmark harnesses.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace cmtos {

/// Streaming mean / variance / min / max (Welford's algorithm).  Constant
/// memory; suitable for long-running per-VC monitors.
class OnlineStats {
 public:
  void add(double x);
  void reset();

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Retains all samples; supports exact percentiles.  Used by benches where
/// sample counts are modest (≤ millions).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank; p in [0,100].
  double percentile(double p) const;

  /// One-line summary: "n=100 mean=1.2 p50=1.1 p99=3.4 max=5.0".
  std::string summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void sort_if_needed() const;
};

/// Windowed event-rate meter: counts events (and bytes) and reports the
/// rate over an explicit [begin, end] window.  The transport QoS monitor
/// uses one per sample period.
class RateMeter {
 public:
  void begin_window(Time now) {
    window_start_ = now;
    events_ = 0;
    bytes_ = 0;
  }
  void record(std::int64_t bytes = 0) {
    ++events_;
    bytes_ += bytes;
  }
  std::int64_t events() const { return events_; }
  std::int64_t bytes() const { return bytes_; }
  /// Events per second over [window_start, now].
  double event_rate(Time now) const;
  /// Bits per second over [window_start, now].
  double bit_rate(Time now) const;

 private:
  Time window_start_ = 0;
  std::int64_t events_ = 0;
  std::int64_t bytes_ = 0;
};

/// Fixed-bucket histogram over [lo, hi); under/overflow tracked separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::int64_t bucket(std::size_t i) const { return counts_[i]; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::int64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }
  /// Renders a compact ASCII bar chart (one line per non-empty bucket).
  std::string render(int max_bar = 40) const;

 private:
  double lo_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace cmtos
