// cmtos/util/byte_io.h
//
// Little-endian wire (de)serialisation helpers for protocol data units.
// All cmtos PDUs (transport headers, OPDUs, RPC messages) are encoded with
// these, so encodings are identical across hosts regardless of native
// byte order — exactly what a wire format requires.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/contract.h"

namespace cmtos {

/// Checked narrowing for wire-width fields: converting a host-width value
/// into a narrower PDU field must not silently truncate.  The value is
/// round-tripped through the target type; a mismatch is a contract
/// violation ("byte_io.narrow") and the truncated value is returned (wire
/// formats stay total functions — release builds count and continue).
/// cmtos-lint (rule narrowing-in-codec) requires PDU encoders to use this
/// instead of a naked static_cast.
template <typename To, typename From>
constexpr To narrow(From v) {
  const To out = static_cast<To>(v);
  CMTOS_ASSERT(static_cast<From>(out) == v && ((out < To{}) == (v < From{})),
               "byte_io.narrow");
  return out;
}

/// Encodes an enum's underlying value into a u8 wire field, checking that
/// the value actually fits: enums grow members over protocol revisions, the
/// wire width does not.
template <typename E>
constexpr std::uint8_t wire_enum(E e) {
  static_assert(std::is_enum_v<E>);
  return narrow<std::uint8_t>(static_cast<std::underlying_type_t<E>>(e));
}

/// Append-only byte writer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Length-prefixed (u32) byte string.
  void blob(std::span<const std::uint8_t> b) {
    u32(narrow<std::uint32_t>(b.size()));
    bytes(b);
  }
  void str(const std::string& s) {
    blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

 private:
  void raw(const void* p, std::size_t n) {
    // Encode little-endian explicitly.
    std::uint64_t v = 0;
    std::memcpy(&v, p, n);
    // Byte extraction, truncation intended.  cmtos-lint: allow(narrowing-in-codec)
    for (std::size_t i = 0; i < n; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t>& out_;
};

/// Thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Why a PDU decode rejected its input.  Every decoder is total over
/// arbitrary bytes and classifies its refusals with this taxonomy; the
/// receive paths turn it into `wire.decode_failed{pdu,reason}` counters and
/// the peer-quarantine logic keys off it (checksum failures are line noise
/// and never blamed on the peer; a structurally invalid PDU that carries a
/// *valid* checksum can only come from a buggy or hostile sender).
enum class WireFault : std::uint8_t {
  kNone = 0,
  kChecksum = 1,   // trailing CRC-32 mismatch (bit errors on the wire)
  kTruncated = 2,  // byte stream underrun (reader ran past the span)
  kBadType = 3,    // unknown type tag / enum value out of range
  kBadLength = 4,  // length field inconsistent with the bytes present
};

inline const char* to_string(WireFault f) {
  switch (f) {
    case WireFault::kNone: return "none";
    case WireFault::kChecksum: return "checksum";
    case WireFault::kTruncated: return "truncated";
    case WireFault::kBadType: return "bad_type";
    case WireFault::kBadLength: return "bad_length";
  }
  return "?";
}

/// Sequential byte reader; throws DecodeError on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint8_t u8() { return take(1)[0]; }
  // le(n) reads exactly n bytes, so these casts cannot truncate.
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }  // cmtos-lint: allow(narrowing-in-codec)
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }  // cmtos-lint: allow(narrowing-in-codec)
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    auto b = take(n);
    return {b.begin(), b.end()};
  }
  std::string str() {
    const auto b = blob();
    return {b.begin(), b.end()};
  }
  std::size_t remaining() const { return in_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) throw DecodeError("byte stream underrun");
    auto s = in_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::uint64_t le(std::size_t n) {
    auto s = take(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(s[i]) << (8 * i);
    return v;
  }
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace cmtos
