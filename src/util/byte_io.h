// cmtos/util/byte_io.h
//
// Little-endian wire (de)serialisation helpers for protocol data units.
// All cmtos PDUs (transport headers, OPDUs, RPC messages) are encoded with
// these, so encodings are identical across hosts regardless of native
// byte order — exactly what a wire format requires.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmtos {

/// Append-only byte writer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Length-prefixed (u32) byte string.
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes(b);
  }
  void str(const std::string& s) {
    blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

 private:
  void raw(const void* p, std::size_t n) {
    // Encode little-endian explicitly.
    std::uint64_t v = 0;
    std::memcpy(&v, p, n);
    for (std::size_t i = 0; i < n; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t>& out_;
};

/// Thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential byte reader; throws DecodeError on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    auto b = take(n);
    return {b.begin(), b.end()};
  }
  std::string str() {
    const auto b = blob();
    return {b.begin(), b.end()};
  }
  std::size_t remaining() const { return in_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) throw DecodeError("byte stream underrun");
    auto s = in_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::uint64_t le(std::size_t n) {
    auto s = take(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(s[i]) << (8 * i);
    return v;
  }
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace cmtos
