#include "util/checksum.h"

#include <array>

namespace cmtos {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace cmtos
