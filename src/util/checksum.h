// cmtos/util/checksum.h
//
// CRC-32 (IEEE 802.3 polynomial, reflected) used for transport-PDU error
// detection and for verifiable synthetic media content.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cmtos {

/// Computes the CRC-32 of `data`, optionally continuing from a previous
/// value (pass the previous return value as `seed` to chain).
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

}  // namespace cmtos
