// cmtos/util/checksum.h
//
// CRC-32 (IEEE 802.3 polynomial, reflected) used for transport-PDU error
// detection and for verifiable synthetic media content.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cmtos {

/// Computes the CRC-32 of `data`, optionally continuing from a previous
/// value (pass the previous return value as `seed` to chain).
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

/// Appends the CRC-32 of the current contents of `wire` as a little-endian
/// trailer.  Every control-plane PDU encoding (control TPDUs, OPDUs, RPC
/// messages) ends with this trailer now that links flip real wire bytes.
inline void append_crc32(std::vector<std::uint8_t>& wire) {
  const std::uint32_t c = crc32(wire);
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::uint8_t>(c >> (8 * i)));
}

/// Verifies and strips a trailing CRC-32: returns the body span (without
/// the 4-byte trailer) when the checksum matches, nullopt otherwise.  A
/// span shorter than the trailer itself cannot match.
inline std::optional<std::span<const std::uint8_t>> strip_crc32(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < 4) return std::nullopt;
  const auto body = wire.first(wire.size() - 4);
  std::uint32_t got = 0;
  for (int i = 0; i < 4; ++i)
    got |= static_cast<std::uint32_t>(wire[wire.size() - 4 + static_cast<std::size_t>(i)])
           << (8 * i);
  if (crc32(body) != got) return std::nullopt;
  return body;
}

}  // namespace cmtos
