// cmtos/util/sync.h
//
// Annotated synchronisation primitives for Clang's -Wthread-safety
// analysis (DESIGN.md §12).
//
// libstdc++'s std::mutex carries no capability attributes, so guarding a
// member with a bare std::mutex gives the analysis nothing to check.
// cmtos::Mutex is a zero-cost wrapper that adds the capability contract;
// cmtos::MutexLock is the matching scoped guard; cmtos::CondVar wraps
// std::condition_variable_any so waits can take the Mutex directly (it is
// a BasicLockable).  cmtos::ThreadRole is a *phantom* capability — no
// runtime state at all — used to express single-threaded role discipline
// (e.g. the SPSC producer/consumer split in ThreadedStreamBuffer) to the
// same analysis.

#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace cmtos {

/// Annotated mutex.  Same layout and cost as std::mutex.
class CMTOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CMTOS_ACQUIRE() { mu_.lock(); }                // cmtos-lint: allow(naked-mutex)
  void unlock() CMTOS_RELEASE() { mu_.unlock(); }            // cmtos-lint: allow(naked-mutex)
  bool try_lock() CMTOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }  // cmtos-lint: allow(naked-mutex)

  /// For the rare interop case (e.g. std::unique_lock in generic code).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over cmtos::Mutex, visible to the analysis.
class CMTOS_SCOPED_CAPABILITY MutexLock {
 public:
  // The guard body is where the direct calls belong.  cmtos-lint: allow(naked-mutex)
  explicit MutexLock(Mutex& mu) CMTOS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CMTOS_RELEASE() { mu_.unlock(); }  // cmtos-lint: allow(naked-mutex)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on cmtos::Mutex.
/// condition_variable_any accepts any BasicLockable, so no unique_lock
/// shim is needed and the capability stays visible to the analysis.
class CondVar {
 public:
  void wait(Mutex& mu) CMTOS_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) CMTOS_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// Phantom capability expressing "this code runs on thread role X".
/// Carries no state and takes no locks: ThreadRoleGuard exists purely so
/// the thread-safety analysis can prove, at compile time, that e.g. only
/// the producer thread touches producer-side ring indices.
class CMTOS_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Scoped assumption of a ThreadRole.  Zero-cost: both functions are
/// empty; the attributes are the whole point.
class CMTOS_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) CMTOS_ACQUIRE(role) { (void)role; }
  ~ThreadRoleGuard() CMTOS_RELEASE() {}

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;
};

}  // namespace cmtos
