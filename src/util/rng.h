// cmtos/util/rng.h
//
// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (link jitter, loss, bit errors,
// variable-bit-rate frame sizes, clock drift assignment) draws from an
// explicitly seeded Rng so that experiments are exactly reproducible.  The
// generator is xoshiro256** seeded via splitmix64; it is fast, has a long
// period and passes the statistical batteries relevant at this scale.

#pragma once

#include <cstdint>

namespace cmtos {

class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.  Equal seeds yield equal
  /// sequences on all platforms.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialises the state from `seed`.
  void reseed(std::uint64_t seed);

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Approximately normal value (12-uniform sum method — adequate for
  /// jitter models, no tail precision requirements).
  double normal(double mean, double stddev);

  /// Derives an independent child generator; used to give each component
  /// its own stream so insertion order does not perturb other components.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace cmtos
