// cmtos/media/live_source.h
//
// A live capture device (camera / microphone, §3.6): produces frames at a
// constant logical rate governed by its *local* clock.  "With live media,
// there is no control over when the information flow starts ... and no
// possibility of altering the speed of a live media flow" — so this source
// ignores orchestration prime/stop hints, and when the ring is full the
// frame is simply lost (perishable live data), never queued.

#pragma once

#include <cstdint>
#include <string>

#include "media/content.h"
#include "platform/device_user.h"
#include "platform/host.h"
#include "util/thread_annotations.h"

namespace cmtos::media {

struct LiveConfig {
  std::uint32_t track_id = 0;
  double rate = 25.0;            // frames per second, by the local clock
  std::int64_t frame_bytes = 4096;
  VbrModel vbr;                  // used when vbr_enabled
  bool vbr_enabled = false;
};

class CMTOS_SHARD_AFFINE LiveSource : public platform::DeviceUser {
 public:
  LiveSource(platform::Platform& platform, platform::Host& host, net::Tsap tsap,
             LiveConfig config);
  ~LiveSource() override;

  struct Stats {
    std::int64_t frames_captured = 0;
    std::int64_t frames_dropped_at_capture = 0;  // ring full: perishable
  };
  const Stats& stats() const { return stats_; }
  bool capturing() const { return capturing_; }

  /// Camera power switch: capture runs only while on.
  void switch_on();
  void switch_off();

 protected:
  void on_source_ready(transport::VcId vc, transport::Connection& conn) override;
  void on_disconnected(transport::VcId vc, transport::DisconnectReason reason) override;

 private:
  void tick();

  platform::Platform& platform_;
  platform::Host& host_;
  LiveConfig config_;
  /// A live device fans its capture out to every connected viewer (each
  /// remote connect to the camera TSAP adds a simplex VC).
  std::vector<transport::Connection*> conns_;
  bool on_ = true;
  bool capturing_ = false;
  std::uint32_t index_ = 0;
  sim::EventHandle tick_;
  Stats stats_;
};

}  // namespace cmtos::media
