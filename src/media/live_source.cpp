#include "media/live_source.h"

namespace cmtos::media {

LiveSource::LiveSource(platform::Platform& platform, platform::Host& host, net::Tsap tsap,
                       LiveConfig config)
    : DeviceUser(host.entity, tsap), platform_(platform), host_(host), config_(config) {}

LiveSource::~LiveSource() { tick_.cancel(); }

void LiveSource::switch_on() {
  on_ = true;
  if (!conns_.empty() && !capturing_) {
    capturing_ = true;
    tick();
  }
}

void LiveSource::switch_off() {
  on_ = false;
  capturing_ = false;
  tick_.cancel();
}

void LiveSource::on_source_ready(transport::VcId, transport::Connection& conn) {
  conns_.push_back(&conn);
  if (on_ && !capturing_) {
    capturing_ = true;
    tick();
  }
}

void LiveSource::on_disconnected(transport::VcId vc, transport::DisconnectReason) {
  std::erase_if(conns_, [&](transport::Connection* c) { return c->id() == vc; });
  if (conns_.empty()) {
    capturing_ = false;
    tick_.cancel();
  }
}

void LiveSource::tick() {
  if (!capturing_ || conns_.empty()) return;
  const std::size_t size = config_.vbr_enabled
                               ? config_.vbr.frame_bytes(index_)
                               : static_cast<std::size_t>(config_.frame_bytes);
  // One pooled frame, written once; every connection shares it by refcount.
  const auto frame = make_frame_view(config_.track_id, index_, size);
  ++stats_.frames_captured;
  for (auto* conn : conns_) {
    if (!conn->submit(frame)) ++stats_.frames_dropped_at_capture;
  }
  ++index_;

  // Capture cadence is node-local: the frame lands in this node's transport
  // buffer, so the tick never needs a serialised executor round.
  auto& node = platform_.network().node(host_.id);
  const Duration local_period = static_cast<Duration>(1e9 / config_.rate);
  tick_ = node.runtime().after(node.clock().true_duration(local_period), [this] { tick(); });
}

}  // namespace cmtos::media
