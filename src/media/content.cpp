#include "media/content.h"

#include <algorithm>

#include "util/byte_io.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace cmtos::media {

namespace {
constexpr std::size_t kHeaderBytes = 16;  // track(4) + index(4) + len(4) + crc(4)
}

std::vector<std::uint8_t> make_frame(std::uint32_t track_id, std::uint32_t index,
                                     std::size_t size) {
  size = std::max(size, kHeaderBytes);
  const std::size_t body_len = size - kHeaderBytes;

  // Deterministic body from (track, index).
  std::vector<std::uint8_t> body(body_len);
  Rng rng((static_cast<std::uint64_t>(track_id) << 32) | index);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u64());

  std::vector<std::uint8_t> frame;
  frame.reserve(size);
  ByteWriter w(frame);
  w.u32(track_id);
  w.u32(index);
  w.u32(static_cast<std::uint32_t>(body_len));
  w.u32(crc32(body));
  w.bytes(body);
  return frame;
}

std::optional<FrameHeader> verify_frame(std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    FrameHeader h;
    h.track_id = r.u32();
    h.index = r.u32();
    const std::uint32_t body_len = r.u32();
    const std::uint32_t crc = r.u32();
    if (frame.size() != kHeaderBytes + body_len) return std::nullopt;
    if (crc32(frame.subspan(kHeaderBytes)) != crc) return std::nullopt;
    return h;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::size_t VbrModel::frame_bytes(std::uint32_t index) const {
  // gop <= 0 selects constant-bit-rate mode: every frame is base_bytes
  // (plus wobble); the I/P pattern applies only when a GOP is configured.
  double size = static_cast<double>(base_bytes);
  if (gop > 0) {
    const bool i_frame = index % static_cast<std::uint32_t>(gop) == 0;
    size *= i_frame ? i_ratio : p_ratio;
  }
  // Deterministic wobble in [-wobble, +wobble].
  Rng rng(0x5eedull ^ index * 0x9e3779b97f4a7c15ull);
  size *= 1.0 + wobble * (2.0 * rng.next_double() - 1.0);
  return static_cast<std::size_t>(std::max(32.0, size));
}

}  // namespace cmtos::media
