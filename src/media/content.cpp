#include "media/content.h"

#include <algorithm>

#include "util/byte_io.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace cmtos::media {

namespace {
constexpr std::size_t kHeaderBytes = 16;  // track(4) + index(4) + len(4) + crc(4)

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Writes one frame (header + deterministic body) into `out`, which must
/// be exactly the frame size.  Shared by the heap and pooled variants so
/// both produce byte-identical frames.
void fill_frame(std::span<std::uint8_t> out, std::uint32_t track_id, std::uint32_t index) {
  const std::size_t body_len = out.size() - kHeaderBytes;
  const auto body = out.subspan(kHeaderBytes);
  Rng rng((static_cast<std::uint64_t>(track_id) << 32) | index);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u64());
  put_u32(out.data(), track_id);
  put_u32(out.data() + 4, index);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(body_len));
  put_u32(out.data() + 12, crc32(body));
}

}  // namespace

std::vector<std::uint8_t> make_frame(std::uint32_t track_id, std::uint32_t index,
                                     std::size_t size) {
  std::vector<std::uint8_t> frame(std::max(size, kHeaderBytes));
  fill_frame(frame, track_id, index);
  return frame;
}

PayloadView make_frame_view(std::uint32_t track_id, std::uint32_t index, std::size_t size) {
  size = std::max(size, kHeaderBytes);
  FrameLease lease = FramePool::global().lease(size);
  fill_frame({lease.data(), size}, track_id, index);
  return std::move(lease).freeze(size);
}

std::optional<FrameHeader> verify_frame(std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    FrameHeader h;
    h.track_id = r.u32();
    h.index = r.u32();
    const std::uint32_t body_len = r.u32();
    const std::uint32_t crc = r.u32();
    if (frame.size() != kHeaderBytes + body_len) return std::nullopt;
    if (crc32(frame.subspan(kHeaderBytes)) != crc) return std::nullopt;
    return h;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::size_t VbrModel::frame_bytes(std::uint32_t index) const {
  // gop <= 0 selects constant-bit-rate mode: every frame is base_bytes
  // (plus wobble); the I/P pattern applies only when a GOP is configured.
  double size = static_cast<double>(base_bytes);
  if (gop > 0) {
    const bool i_frame = index % static_cast<std::uint32_t>(gop) == 0;
    size *= i_frame ? i_ratio : p_ratio;
  }
  // Deterministic wobble in [-wobble, +wobble].
  Rng rng(0x5eedull ^ index * 0x9e3779b97f4a7c15ull);
  size *= 1.0 + wobble * (2.0 * rng.next_double() - 1.0);
  return static_cast<std::size_t>(std::max(32.0, size));
}

}  // namespace cmtos::media
