#include "media/sync_meter.h"

#include <cmath>

namespace cmtos::media {

void SyncMeter::begin(Duration period) { sample_tick(period); }

void SyncMeter::sample_tick(Duration period) {
  tick_ = sched_.after(period, [this, period] {
    Sample s;
    s.t = sched_.now();
    s.positions_s.reserve(streams_.size());
    for (const auto& ref : streams_) {
      s.positions_s.push_back(ref.sink->last_seq() < 0 ? -1.0
                                                       : ref.sink->position_seconds_at(s.t));
    }
    samples_.push_back(std::move(s));
    sample_tick(period);
  });
}

SampleSet SyncMeter::skew_seconds(std::size_t a, std::size_t b) const {
  SampleSet set;
  for (const auto& s : samples_) {
    if (a >= s.positions_s.size() || b >= s.positions_s.size()) continue;
    if (s.positions_s[a] < 0 || s.positions_s[b] < 0) continue;  // not started
    set.add(s.positions_s[a] - s.positions_s[b]);
  }
  return set;
}

double SyncMeter::max_abs_skew_seconds() const {
  double worst = 0;
  for (std::size_t a = 0; a < streams_.size(); ++a) {
    for (std::size_t b = a + 1; b < streams_.size(); ++b) {
      const SampleSet s = skew_seconds(a, b);
      if (s.empty()) continue;
      worst = std::max({worst, std::abs(s.min()), std::abs(s.max())});
    }
  }
  return worst;
}

}  // namespace cmtos::media
