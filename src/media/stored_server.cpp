#include "media/stored_server.h"

#include "util/logging.h"

namespace cmtos::media {

using platform::DeviceUser;
using transport::Connection;
using transport::VcId;

class StoredMediaServer::TrackEndpoint : public DeviceUser, public orch::OrchAppHandler {
 public:
  TrackEndpoint(StoredMediaServer& server, net::Tsap tsap, TrackConfig config)
      : DeviceUser(server.host_.entity, tsap),
        server_(server),
        config_(config) {}

  ~TrackEndpoint() override {
    tick_.cancel();
    if (vc_ != transport::kInvalidVc) server_.host_.app_mux.detach(vc_);
  }

  TrackStats stats;
  std::int64_t index = 0;

  void seek(std::int64_t frame_index) {
    index = frame_index;
    stats.end_of_track = index >= config_.frame_count;
  }

 protected:
  void on_source_ready(VcId vc, Connection& conn) override {
    vc_ = vc;
    conn_ = &conn;
    server_.host_.app_mux.attach(vc, this);
    // The application thread retries a blocked push when the protocol
    // frees a slot (the semaphore signal of §3.7).
    conn.buffer().set_space_available([this] {
      if (producing_ && config_.paced_rate <= 0) pump();
    });
    if (config_.auto_start) start_producing();
  }

  void on_disconnected(VcId vc, transport::DisconnectReason reason) override {
    if (vc != vc_) return;
    // Honour remote-release requests (§4.1.1): a T-Disconnect.indication
    // for an open VC asks this endpoint to release it.
    if (reason == transport::DisconnectReason::kUserInitiated && conn_ != nullptr &&
        entity().source(vc) != nullptr) {
      entity().t_disconnect_request(vc);
    }
    producing_ = false;
    conn_ = nullptr;
    tick_.cancel();
  }

  // --- OrchAppHandler (the source application thread of Fig 7) ---
  bool orch_prime_indication(orch::OrchSessionId, VcId, bool is_source) override {
    if (!is_source) return true;
    if (stats.end_of_track) return false;  // nothing to play: Orch.Deny
    start_producing();
    return true;
  }
  void orch_start_indication(orch::OrchSessionId, VcId, bool is_source) override {
    if (is_source) start_producing();
  }
  void orch_stop_indication(orch::OrchSessionId, VcId, bool) override {
    // Keep producing until the ring fills; the protocol's flow control has
    // already frozen the wire (§6.2.3), so the thread simply blocks.
  }
  bool orch_delayed_indication(orch::OrchSessionId, VcId, bool is_source,
                               std::int64_t) override {
    if (is_source) ++stats.delayed_indications;
    return true;
  }

 private:
  void start_producing() {
    if (producing_ || conn_ == nullptr) return;
    producing_ = true;
    if (config_.paced_rate > 0) {
      schedule_paced_tick();
    } else {
      pump();
    }
  }

  /// Unpaced mode: fill the ring until it pushes back.
  void pump() {
    while (producing_ && conn_ != nullptr && !stats.end_of_track) {
      if (!submit_next()) {
        ++stats.production_blocked_events;
        return;  // space_available will call pump() again
      }
    }
  }

  void schedule_paced_tick() {
    // Paced production is node-local, like the live-source capture tick.
    auto& node = server_.platform_.network().node(server_.host_.id);
    const auto& clock = node.clock();
    const Duration local_period = static_cast<Duration>(1e9 / config_.paced_rate);
    tick_ = node.runtime().after(clock.true_duration(local_period), [this] {
      if (!producing_ || conn_ == nullptr || stats.end_of_track) return;
      if (!submit_next()) ++stats.production_blocked_events;  // frame skipped this period
      schedule_paced_tick();
    });
  }

  bool submit_next() {
    if (index >= config_.frame_count) {
      stats.end_of_track = true;
      producing_ = false;
      return false;
    }
    const auto idx32 = static_cast<std::uint32_t>(index);
    std::uint64_t event = 0;
    if (config_.event_every > 0 && idx32 % config_.event_every == 0 && index > 0)
      event = config_.event_value;
    auto frame = make_frame_view(config_.track_id, idx32, config_.vbr.frame_bytes(idx32));
    if (!conn_->submit(std::move(frame), event)) return false;
    ++index;
    ++stats.frames_produced;
    return true;
  }

  StoredMediaServer& server_;
  TrackConfig config_;
  VcId vc_ = transport::kInvalidVc;
  Connection* conn_ = nullptr;
  bool producing_ = false;
  sim::EventHandle tick_;
};

StoredMediaServer::StoredMediaServer(platform::Platform& platform, platform::Host& host,
                                     std::string name)
    : platform_(platform), host_(host), name_(std::move(name)) {}

StoredMediaServer::~StoredMediaServer() = default;

net::NetAddress StoredMediaServer::add_track(net::Tsap tsap, const TrackConfig& config) {
  tracks_[tsap] = std::make_unique<TrackEndpoint>(*this, tsap, config);
  return {host_.id, tsap};
}

void StoredMediaServer::seek(net::Tsap tsap, std::int64_t frame_index) {
  tracks_.at(tsap)->seek(frame_index);
}

const StoredMediaServer::TrackStats& StoredMediaServer::stats(net::Tsap tsap) const {
  return tracks_.at(tsap)->stats;
}

std::int64_t StoredMediaServer::position(net::Tsap tsap) const {
  return tracks_.at(tsap)->index;
}

}  // namespace cmtos::media
