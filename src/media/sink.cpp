#include "media/sink.h"

#include <algorithm>

namespace cmtos::media {

RenderingSink::RenderingSink(platform::Platform& platform, platform::Host& host, net::Tsap tsap,
                             RenderConfig config)
    : DeviceUser(host.entity, tsap), platform_(platform), host_(host), config_(config) {}

RenderingSink::~RenderingSink() {
  tick_.cancel();
  if (vc_ != transport::kInvalidVc) host_.app_mux.detach(vc_);
}

double RenderingSink::position_seconds() const {
  if (last_seq_ < 0 || rate_ <= 0) return 0;
  return static_cast<double>(last_seq_ - base_seq_ + 1) / rate_;
}

double RenderingSink::position_seconds_at(Time true_now) const {
  if (last_seq_ < 0 || rate_ <= 0) return 0;
  const double period_s = 1.0 / rate_;
  const double frac =
      std::min(1.0, to_seconds(true_now - last_render_true_time_) / period_s);
  return position_seconds() + frac * period_s;
}

void RenderingSink::on_sink_ready(transport::VcId vc, transport::Connection& conn) {
  vc_ = vc;
  conn_ = &conn;
  rate_ = config_.rate > 0 ? config_.rate : conn.agreed_qos().osdu_rate;
  host_.app_mux.attach(vc, this);
  if (!rendering_) {
    rendering_ = true;
    render_tick();
  }
}

void RenderingSink::on_disconnected(transport::VcId vc, transport::DisconnectReason) {
  if (vc != vc_) return;
  conn_ = nullptr;
  rendering_ = false;
  tick_.cancel();
}

void RenderingSink::render_tick() {
  if (!rendering_ || conn_ == nullptr) return;

  auto osdu = conn_->receive();
  if (!osdu) {
    // Nothing deliverable: repeat the previous frame.  Counted only after
    // the stream has begun (an idle sink before start is not starving).
    if (last_seq_ >= 0) ++stats_.starvation_events;
  } else {
    ++stats_.frames_rendered;
    if (base_seq_ < 0) base_seq_ = osdu->seq;
    last_seq_ = osdu->seq;
    last_render_true_time_ = platform_.scheduler().now();

    DeliveryRecord rec;
    rec.true_time = platform_.scheduler().now();
    rec.local_time = platform_.network().node(host_.id).local_now();
    rec.seq = osdu->seq;
    rec.true_delay = rec.true_time - osdu->true_submit;
    auto header = verify_frame(osdu->data);
    if (!header || (config_.expect_track != 0 && header->track_id != config_.expect_track)) {
      rec.intact = false;
      ++stats_.integrity_failures;
    } else {
      rec.frame_index = header->index;
    }
    if (config_.keep_records) records_.push_back(rec);
  }

  // Rendering cadence is node-local, like the capture tick.
  auto& node = platform_.network().node(host_.id);
  const Duration local_period = static_cast<Duration>(1e9 / rate_);
  tick_ = node.runtime().after(node.clock().true_duration(local_period),
                               [this] { render_tick(); });
}

}  // namespace cmtos::media
