// cmtos/media/stored_server.h
//
// Stored-media server (the paper's "PC based storage server", §2.1): holds
// tracks behind TSAPs, serves each over a source connection.  The producer
// "thread" per track respects the §3.7 shared-ring discipline: it pumps as
// fast as the ring accepts (stored media is prefetchable — the transport's
// rate-based flow control paces the wire) and blocks when the ring fills,
// which is exactly what Orch.Prime exploits to fill pipelines.
//
// The server cooperates with the orchestration service as the source
// application thread of Fig 7: Orch.Prime.indication starts generation,
// Orch.Stop leaves it blocked on the full ring, seek() + primed restart
// replays from a new position without stale data (the LLO flushes).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "media/content.h"
#include "orch/llo.h"
#include "platform/device_user.h"
#include "platform/host.h"
#include "util/thread_annotations.h"

namespace cmtos::media {

struct TrackConfig {
  std::uint32_t track_id = 0;
  /// Frames (OSDUs) in the stored item; production stops at the end.
  std::int64_t frame_count = INT64_MAX;
  VbrModel vbr;
  /// false: wait for Orch.Prime.indication before generating (orchestrated
  /// play-out); true: start producing as soon as the VC opens.
  bool auto_start = true;
  /// 0 = pump as fast as the ring accepts; otherwise artificial pacing in
  /// frames/second by the server's local clock (used to model a slow
  /// source application for Orch.Delayed experiments).
  double paced_rate = 0.0;
  /// Event value attached to every `event_every`-th frame (0 = never) —
  /// exercises the §6.3.4 event mechanism (e.g. signalling a change of
  /// encoding in the data stream).
  std::uint32_t event_every = 0;
  std::uint64_t event_value = 0;
};

class CMTOS_SHARD_AFFINE StoredMediaServer {
 public:
  StoredMediaServer(platform::Platform& platform, platform::Host& host, std::string name);
  ~StoredMediaServer();

  platform::Host& host() { return host_; }

  /// Exposes a track at `tsap`.  Returns the device address to connect to.
  net::NetAddress add_track(net::Tsap tsap, const TrackConfig& config);

  /// Repositions a track's play-out point (by TSAP).  Takes effect for the
  /// next frame generated; combine with a flushing Orch.Prime for clean
  /// resumption (§6.2.1).
  void seek(net::Tsap tsap, std::int64_t frame_index);

  struct TrackStats {
    std::int64_t frames_produced = 0;
    std::int64_t production_blocked_events = 0;
    std::int64_t delayed_indications = 0;
    bool end_of_track = false;
  };
  const TrackStats& stats(net::Tsap tsap) const;

  /// Current play-out index of a track.
  std::int64_t position(net::Tsap tsap) const;

 private:
  class TrackEndpoint;

  platform::Platform& platform_;
  platform::Host& host_;
  std::string name_;
  std::map<net::Tsap, std::unique_ptr<TrackEndpoint>> tracks_;
};

}  // namespace cmtos::media
