// cmtos/media/content.h
//
// Verifiable synthetic media content.  Real media payloads are irrelevant
// to transport/orchestration behaviour, but end-to-end *integrity* matters
// for testing: every generated frame embeds its track id, frame index and a
// CRC over its pseudo-random body, so sinks can detect corruption,
// reordering and cross-stream mix-ups.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/frame_pool.h"

namespace cmtos::media {

struct FrameHeader {
  std::uint32_t track_id = 0;
  std::uint32_t index = 0;
};

/// Generates a frame of exactly `size` bytes (minimum 16 for the header).
std::vector<std::uint8_t> make_frame(std::uint32_t track_id, std::uint32_t index,
                                     std::size_t size);

/// Same frame bytes written once into a pooled frame (the zero-copy media
/// path): no heap allocation in steady state, and the returned view rides
/// refcounted through segmentation, link transit and reassembly.
PayloadView make_frame_view(std::uint32_t track_id, std::uint32_t index, std::size_t size);

/// Verifies integrity and returns the embedded header, or nullopt when the
/// frame is malformed or its CRC does not match.
std::optional<FrameHeader> verify_frame(std::span<const std::uint8_t> frame);

/// Variable-bit-rate frame size model: a GOP-like pattern where every
/// `gop`-th frame is an I-frame of `i_ratio` x base size and the rest are
/// smaller P-frames, plus a deterministic per-frame wobble.  VBR encodings
/// are why the paper insists "at each time period there will always be
/// something to transmit (i.e. one logical unit) even when CM data is
/// variable bit rate encoded" (§3.7).
struct VbrModel {
  std::int64_t base_bytes = 4096;
  int gop = 12;
  double i_ratio = 2.5;
  double p_ratio = 0.7;
  double wobble = 0.15;  // +/- fraction of deterministic pseudo-noise

  std::size_t frame_bytes(std::uint32_t index) const;
};

}  // namespace cmtos::media
