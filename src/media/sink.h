// cmtos/media/sink.h
//
// Rendering sink: the sink application thread of Fig 7.  It consumes one
// OSDU per render period, paced by the sink host's *local* clock (as a
// hardware framebuffer/DAC would be), verifies content integrity, and logs
// a delivery record per frame so the SyncMeter and the benches can compute
// ground-truth inter-stream skew, jitter and starvation.
//
// When the ring is empty — or the LLO is holding delivery — the renderer
// repeats the previous frame (a starvation event) rather than catching up
// later: continuous media plays in real time or not at all.

#pragma once

#include <cstdint>
#include <vector>

#include "media/content.h"
#include "platform/device_user.h"
#include "platform/host.h"
#include "util/thread_annotations.h"

namespace cmtos::media {

struct RenderConfig {
  /// Render rate in OSDUs/second by the local clock.  0 = adopt the
  /// agreed QoS rate of the connection when it opens.
  double rate = 0.0;
  /// Expected track id (integrity checking); 0 disables the check.
  std::uint32_t expect_track = 0;
  /// Keep per-frame delivery records (benches); stats are always kept.
  bool keep_records = true;
};

struct DeliveryRecord {
  Time true_time = 0;       // simulation ground truth
  Time local_time = 0;      // sink's local clock
  std::uint32_t seq = 0;    // OSDU sequence number
  std::uint32_t frame_index = 0;
  Duration true_delay = 0;  // submit -> render, ground truth
  bool intact = true;
};

class CMTOS_SHARD_AFFINE RenderingSink : public platform::DeviceUser, public orch::OrchAppHandler {
 public:
  RenderingSink(platform::Platform& platform, platform::Host& host, net::Tsap tsap,
                RenderConfig config);
  ~RenderingSink() override;

  struct Stats {
    std::int64_t frames_rendered = 0;
    std::int64_t starvation_events = 0;   // tick with nothing to render
    std::int64_t integrity_failures = 0;  // corrupt or foreign frames
    std::int64_t delayed_indications = 0;
  };
  const Stats& stats() const { return stats_; }
  const std::vector<DeliveryRecord>& records() const { return records_; }

  bool rendering() const { return rendering_; }
  /// Last OSDU sequence rendered (-1 if none).
  std::int64_t last_seq() const { return last_seq_; }
  /// First OSDU sequence rendered (-1 if none) — the media position base.
  std::int64_t base_seq() const { return base_seq_; }
  /// Media position in seconds: frames rendered so far / rate.
  double position_seconds() const;
  /// Media position interpolated within the current render period, so
  /// skew measurements are not quantised to whole frame periods.
  double position_seconds_at(Time true_now) const;
  double render_rate() const { return rate_; }

  transport::VcId vc() const { return vc_; }

  // --- OrchAppHandler (sink application thread) ---
  bool orch_prime_indication(orch::OrchSessionId, transport::VcId, bool is_source) override {
    return is_source ? true : !deny_prime_;
  }
  bool orch_delayed_indication(orch::OrchSessionId, transport::VcId, bool is_source,
                               std::int64_t) override {
    if (!is_source) ++stats_.delayed_indications;
    return true;
  }

  /// Test hook: make this sink refuse Orch.Prime (Orch.Deny path).
  void set_deny_prime(bool deny) { deny_prime_ = deny; }

 protected:
  void on_sink_ready(transport::VcId vc, transport::Connection& conn) override;
  void on_disconnected(transport::VcId vc, transport::DisconnectReason reason) override;

 private:
  void render_tick();

  platform::Platform& platform_;
  platform::Host& host_;
  RenderConfig config_;
  transport::Connection* conn_ = nullptr;
  transport::VcId vc_ = transport::kInvalidVc;
  double rate_ = 25.0;
  bool rendering_ = false;
  bool deny_prime_ = false;
  std::int64_t last_seq_ = -1;
  std::int64_t base_seq_ = -1;
  Time last_render_true_time_ = 0;
  sim::EventHandle tick_;
  Stats stats_;
  std::vector<DeliveryRecord> records_;
};

}  // namespace cmtos::media
