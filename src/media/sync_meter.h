// cmtos/media/sync_meter.h
//
// Ground-truth inter-stream synchronisation measurement.
//
// Orchestration's job (§3.6) is to keep related streams at the same *media
// position* over time — e.g. lip sync between the audio and video of a
// film.  The SyncMeter samples the media position of each registered sink
// at a fixed true-time cadence and reports pairwise skew
//
//     skew_ab(t) = position_a(t) - position_b(t)      [seconds of media]
//
// which is exactly the quantity human viewers perceive (≈ ±80 ms is the
// classical lip-sync annoyance threshold).  It measures with the
// simulation's global clock, which no protocol component is allowed to
// read — pure instrumentation.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "media/sink.h"
#include "util/stats.h"

namespace cmtos::media {

class SyncMeter {
 public:
  explicit SyncMeter(sim::Scheduler& sched) : sched_(sched) {}
  ~SyncMeter() { tick_.cancel(); }

  void add_stream(const std::string& name, const RenderingSink* sink) {
    streams_.push_back({name, sink});
  }

  /// Begins periodic sampling every `period` of true time.
  void begin(Duration period);
  void stop() { tick_.cancel(); }

  struct Sample {
    Time t = 0;
    std::vector<double> positions_s;  // one per stream, registration order
  };
  const std::vector<Sample>& samples() const { return samples_; }

  /// Pairwise skew series between stream `a` and `b` (by index), in
  /// seconds of media time; samples where either stream has not started
  /// are excluded.
  SampleSet skew_seconds(std::size_t a, std::size_t b) const;

  /// Worst absolute skew across all pairs and all samples (seconds).
  double max_abs_skew_seconds() const;

  std::size_t stream_count() const { return streams_.size(); }
  const std::string& stream_name(std::size_t i) const { return streams_[i].name; }

 private:
  void sample_tick(Duration period);

  struct StreamRef {
    std::string name;
    const RenderingSink* sink;
  };

  sim::Scheduler& sched_;
  std::vector<StreamRef> streams_;
  std::vector<Sample> samples_;
  sim::EventHandle tick_;
};

}  // namespace cmtos::media
