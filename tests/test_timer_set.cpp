// Unit tests for transport::TimerSet — the keyed protocol-timer table.
//
// The invariant under test is "at most one live timer per (kind, key)":
// re-arming replaces the previous timer, cancel/cancel_key/cancel_all and
// the destructor drop slots, and a cancelled slot can never fire — not
// even when the cancel runs at the same simulated timestamp the timer was
// due.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.h"
#include "transport/timer_set.h"

namespace cmtos::transport {
namespace {

constexpr std::uint64_t kVc = 7;

class TimerSetTest : public ::testing::Test {
 protected:
  TimerSetTest() : rt_(sched_.executor().add_shard()), timers_(rt_) {}

  sim::Scheduler sched_;
  sim::NodeRuntime& rt_;
  TimerSet timers_;
};

TEST_F(TimerSetTest, ArmLocalFiresOnceAtDeadline) {
  int fired = 0;
  timers_.arm_local(TimerKind::kKeepalive, kVc, 100, [&] { ++fired; });
  EXPECT_TRUE(timers_.pending(TimerKind::kKeepalive, kVc));

  sched_.run_until(99);
  EXPECT_EQ(fired, 0);
  sched_.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timers_.pending(TimerKind::kKeepalive, kVc));

  sched_.run_until(1000);
  EXPECT_EQ(fired, 1);  // one-shot: never fires again
}

TEST_F(TimerSetTest, ArmGlobalFiresToo) {
  int fired = 0;
  timers_.arm_global(TimerKind::kOpTimeout, kVc, 50, [&] { ++fired; });
  EXPECT_TRUE(timers_.pending(TimerKind::kOpTimeout, kVc));
  sched_.run_until(50);
  EXPECT_EQ(fired, 1);
}

TEST_F(TimerSetTest, RearmReplacesThePreviousTimer) {
  int first = 0;
  int second = 0;
  timers_.arm_local(TimerKind::kCrRetransmit, kVc, 10, [&] { ++first; });
  timers_.arm_local(TimerKind::kCrRetransmit, kVc, 500, [&] { ++second; });
  // One live timer in the slot: the re-arm cancelled the first.
  EXPECT_EQ(rt_.live(), 1u);

  sched_.run_until(10);
  EXPECT_EQ(first, 0);  // the replaced timer's deadline passes silently
  sched_.run_until(500);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(TimerSetTest, RepeatedRearmKeepsExactlyOneLiveTimer) {
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    timers_.arm_local(TimerKind::kRcrRetransmit, kVc,
                      100 + i, [&] { ++fired; });
    EXPECT_EQ(rt_.live(), 1u);
  }
  sched_.run_until(10'000);
  EXPECT_EQ(fired, 1);  // only the last arm survives
}

TEST_F(TimerSetTest, CancelPreventsFiringAndIsIdempotent) {
  int fired = 0;
  timers_.arm_local(TimerKind::kLiveness, kVc, 100, [&] { ++fired; });
  timers_.cancel(TimerKind::kLiveness, kVc);
  EXPECT_FALSE(timers_.pending(TimerKind::kLiveness, kVc));
  EXPECT_EQ(rt_.live(), 0u);

  timers_.cancel(TimerKind::kLiveness, kVc);  // empty slot: no effect
  timers_.cancel(TimerKind::kKeepalive, kVc + 1);

  sched_.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST_F(TimerSetTest, CancelAtTheDeadlineStillWins) {
  // The cancel runs as an event at the *same* timestamp the timer is due.
  // It was scheduled first, so it executes first (per-shard ties break by
  // insertion order) — and the cancelled slot must not fire afterwards.
  int fired = 0;
  rt_.at(100, [&] { timers_.cancel(TimerKind::kRenegRetransmit, kVc); });
  timers_.arm_local(TimerKind::kRenegRetransmit, kVc, 100, [&] { ++fired; });

  sched_.run_until(200);
  EXPECT_EQ(fired, 0);
}

TEST_F(TimerSetTest, RearmAtTheDeadlineSupersedesTheDueTimer) {
  // Same-timestamp re-arm: the protocol advancing at t exactly when the
  // retransmit was due must push the retransmit out, not double-fire.
  int old_fired = 0;
  int new_fired = 0;
  rt_.at(100, [&] {
    timers_.arm_local(TimerKind::kCrRetransmit, kVc, 50, [&] { ++new_fired; });
  });
  timers_.arm_local(TimerKind::kCrRetransmit, kVc, 100, [&] { ++old_fired; });

  sched_.run_until(1000);
  EXPECT_EQ(old_fired, 0);
  EXPECT_EQ(new_fired, 1);
}

TEST_F(TimerSetTest, KindsUnderOneKeyAreIndependentSlots) {
  std::vector<int> fired(3, 0);
  timers_.arm_local(TimerKind::kKeepalive, kVc, 10, [&] { ++fired[0]; });
  timers_.arm_local(TimerKind::kLiveness, kVc, 20, [&] { ++fired[1]; });
  timers_.arm_local(TimerKind::kOpTimeout, kVc, 30, [&] { ++fired[2]; });
  EXPECT_EQ(rt_.live(), 3u);

  timers_.cancel(TimerKind::kLiveness, kVc);

  sched_.run_until(100);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 0);
  EXPECT_EQ(fired[2], 1);
}

TEST_F(TimerSetTest, SameKindDistinctKeysAreIndependentSlots) {
  int a = 0;
  int b = 0;
  timers_.arm_local(TimerKind::kKeepalive, 1, 10, [&] { ++a; });
  timers_.arm_local(TimerKind::kKeepalive, 2, 10, [&] { ++b; });
  EXPECT_EQ(rt_.live(), 2u);
  EXPECT_TRUE(timers_.pending(TimerKind::kKeepalive, 1));
  EXPECT_TRUE(timers_.pending(TimerKind::kKeepalive, 2));

  sched_.run_until(10);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(TimerSetTest, CancelKeyDropsEveryKindUnderTheKey) {
  int torn_down = 0;
  int other_vc = 0;
  timers_.arm_local(TimerKind::kKeepalive, kVc, 10, [&] { ++torn_down; });
  timers_.arm_local(TimerKind::kLiveness, kVc, 20, [&] { ++torn_down; });
  timers_.arm_global(TimerKind::kOpTimeout, kVc, 30, [&] { ++torn_down; });
  timers_.arm_local(TimerKind::kKeepalive, kVc + 1, 40, [&] { ++other_vc; });

  timers_.cancel_key(kVc);  // VC teardown
  EXPECT_EQ(rt_.live(), 1u);
  EXPECT_FALSE(timers_.pending(TimerKind::kKeepalive, kVc));
  EXPECT_TRUE(timers_.pending(TimerKind::kKeepalive, kVc + 1));

  sched_.run_until(100);
  EXPECT_EQ(torn_down, 0);
  EXPECT_EQ(other_vc, 1);
}

TEST_F(TimerSetTest, CancelAllDropsEverything) {
  int fired = 0;
  for (std::uint64_t key = 0; key < 8; ++key) {
    timers_.arm_local(TimerKind::kRcrRetransmit, key, 10 + key, [&] { ++fired; });
    timers_.arm_global(TimerKind::kOpTimeout, key, 20 + key, [&] { ++fired; });
  }
  EXPECT_EQ(rt_.live(), 16u);

  timers_.cancel_all();  // crash: all protocol timers die with the node
  EXPECT_EQ(rt_.live(), 0u);

  sched_.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST_F(TimerSetTest, DestructorCancelsOutstandingTimers) {
  int fired = 0;
  {
    TimerSet doomed(rt_);
    doomed.arm_local(TimerKind::kKeepalive, kVc, 100, [&] { ++fired; });
    EXPECT_EQ(rt_.live(), 1u);
  }
  EXPECT_EQ(rt_.live(), 0u);
  sched_.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST_F(TimerSetTest, ExpiryCallbackMayRearmItsOwnSlot) {
  // The retransmit pattern: each expiry re-arms the same (kind, key) for
  // the next try.  The slot is re-armed from inside the firing event, so
  // the one-live-timer invariant must hold across the fire/re-arm edge.
  int tries = 0;
  std::function<void()> retransmit = [&] {
    ++tries;
    if (tries < 5) {
      timers_.arm_local(TimerKind::kCrRetransmit, kVc, 100, retransmit);
      EXPECT_EQ(rt_.live(), 1u);
    }
  };
  timers_.arm_local(TimerKind::kCrRetransmit, kVc, 100, retransmit);

  sched_.run_until(10'000);
  EXPECT_EQ(tries, 5);
  EXPECT_FALSE(timers_.pending(TimerKind::kCrRetransmit, kVc));
}

TEST_F(TimerSetTest, CancelThenRearmStartsAFreshTimer) {
  int first = 0;
  int second = 0;
  timers_.arm_local(TimerKind::kLiveness, kVc, 10, [&] { ++first; });
  timers_.cancel(TimerKind::kLiveness, kVc);
  timers_.arm_local(TimerKind::kLiveness, kVc, 50, [&] { ++second; });
  EXPECT_EQ(rt_.live(), 1u);

  sched_.run_until(100);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace cmtos::transport
