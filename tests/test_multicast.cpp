// Tests for the §3.8 transport-layer 1:N multicast facility.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "media/content.h"
#include "transport/multicast.h"

namespace cmtos::test {
namespace {

using transport::MulticastGroup;

struct MulticastWorld {
  explicit MulticastWorld(std::size_t members, net::LinkConfig link = lan_link())
      : star(members, link) {}

  /// Sinks bound at tsap 20 on every leaf except leaf0 (the source).
  StarPlatform star;
};

TEST(Multicast, FansOutToAllMembers) {
  StarPlatform star(4);
  auto& src_host = *star.leaves[0];
  MulticastGroup group(src_host.entity, 10);
  std::vector<std::unique_ptr<ScriptedUser>> sinks;
  int connected = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    sinks.push_back(std::make_unique<ScriptedUser>(star.leaves[i]->entity));
    star.leaves[i]->entity.bind(20, sinks.back().get());
    group.add_member({star.leaves[i]->id, 20},
                     basic_request({src_host.id, 10}, {star.leaves[i]->id, 20}, 25.0, 1024),
                     [&](auto, bool ok, auto) { connected += ok; });
  }
  star.platform.run_until(kSecond);
  ASSERT_EQ(connected, 3);
  EXPECT_EQ(group.member_count(), 3u);

  // One submit reaches every member, byte-identical.
  const auto frame = media::make_frame(9, 0, 600);
  EXPECT_EQ(group.submit(frame, 0xabc), 3);
  star.platform.run_until(2 * kSecond);
  for (std::size_t i = 1; i < 4; ++i) {
    auto* sink = star.leaves[i]->entity.sink(group.member_vc({star.leaves[i]->id, 20}));
    ASSERT_NE(sink, nullptr);
    auto o = sink->receive();
    ASSERT_TRUE(o.has_value());
    EXPECT_EQ(o->data, frame);
    EXPECT_EQ(o->event, 0xabcu);
  }
}

TEST(Multicast, PerMemberQosIndependence) {
  // Member 2 sits behind a thin branch: its contract degrades, the others
  // keep the full rate.
  StarPlatform star(3);
  auto& src_host = *star.leaves[0];
  // Replace leaf2's branch with a thin one: rebuild world instead.
  platform::Platform p(9);
  auto& hub = p.add_host("hub");
  auto& src = p.add_host("src");
  auto& fast = p.add_host("fast");
  auto& slow = p.add_host("slow");
  p.network().add_link(hub.id, src.id, lan_link());
  p.network().add_link(hub.id, fast.id, lan_link());
  net::LinkConfig thin = lan_link();
  thin.bandwidth_bps = 1'000'000;
  p.network().add_link(hub.id, slow.id, thin);
  p.network().finalize_routes();
  (void)src_host;

  ScriptedUser fast_user(fast.entity), slow_user(slow.entity);
  fast.entity.bind(20, &fast_user);
  slow.entity.bind(20, &slow_user);
  MulticastGroup group(src.entity, 10);
  transport::QosParams fast_agreed, slow_agreed;
  group.add_member({fast.id, 20}, basic_request({src.id, 10}, {fast.id, 20}, 25.0, 8192),
                   [&](auto, bool, const transport::QosParams& q) { fast_agreed = q; });
  group.add_member({slow.id, 20}, basic_request({src.id, 10}, {slow.id, 20}, 25.0, 8192),
                   [&](auto, bool, const transport::QosParams& q) { slow_agreed = q; });
  p.run_until(kSecond);
  EXPECT_NEAR(fast_agreed.osdu_rate, 25.0, 0.01);
  EXPECT_LT(slow_agreed.osdu_rate, 15.0);  // degraded by its thin branch
  EXPECT_GE(slow_agreed.osdu_rate, 25.0 / 4);
}

TEST(Multicast, SlowMemberDoesNotStallOthers) {
  platform::Platform p(10);
  auto& src = p.add_host("src");
  auto& a = p.add_host("a");
  auto& b = p.add_host("b");
  p.network().add_link(src.id, a.id, lan_link());
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.3;
  p.network().add_link(src.id, b.id, lossy);
  p.network().finalize_routes();

  ScriptedUser ua(a.entity), ub(b.entity);
  a.entity.bind(20, &ua);
  b.entity.bind(20, &ub);
  MulticastGroup group(src.entity, 10);
  group.add_member({a.id, 20}, basic_request({src.id, 10}, {a.id, 20}, 50.0, 1024));
  group.add_member({b.id, 20}, basic_request({src.id, 10}, {b.id, 20}, 50.0, 1024));
  p.run_until(3 * kSecond);
  ASSERT_EQ(group.member_count(), 2u);

  std::int64_t got_a = 0;
  for (int round = 0; round < 100; ++round) {
    (void)group.submit(std::vector<std::uint8_t>(500, 1));
    p.run_until(p.scheduler().now() + 20 * kMillisecond);
    auto* sink_a = a.entity.sink(group.member_vc({a.id, 20}));
    while (sink_a->receive()) ++got_a;
    auto* sink_b = b.entity.sink(group.member_vc({b.id, 20}));
    while (sink_b && sink_b->receive()) {
    }
  }
  // The clean member received essentially everything despite the lossy
  // sibling.
  EXPECT_GE(got_a, 95);
}

TEST(Multicast, RemoveMemberStopsOnlyThatMember) {
  StarPlatform star(3);
  auto& src_host = *star.leaves[0];
  ScriptedUser u1(star.leaves[1]->entity), u2(star.leaves[2]->entity);
  star.leaves[1]->entity.bind(20, &u1);
  star.leaves[2]->entity.bind(20, &u2);
  MulticastGroup group(src_host.entity, 10);
  group.add_member({star.leaves[1]->id, 20},
                   basic_request({src_host.id, 10}, {star.leaves[1]->id, 20}, 25.0, 1024));
  group.add_member({star.leaves[2]->id, 20},
                   basic_request({src_host.id, 10}, {star.leaves[2]->id, 20}, 25.0, 1024));
  star.platform.run_until(kSecond);
  const auto vc1 = group.member_vc({star.leaves[1]->id, 20});
  const auto vc2 = group.member_vc({star.leaves[2]->id, 20});

  group.remove_member({star.leaves[1]->id, 20});
  star.platform.run_until(2 * kSecond);
  EXPECT_EQ(group.member_count(), 1u);
  EXPECT_EQ(star.leaves[1]->entity.sink(vc1), nullptr);
  EXPECT_NE(star.leaves[2]->entity.sink(vc2), nullptr);
  EXPECT_EQ(group.submit(std::vector<std::uint8_t>(100, 1)), 1);
}

TEST(Multicast, FailedMemberConnectLeavesGroupUsable) {
  StarPlatform star(2);
  auto& src_host = *star.leaves[0];
  ScriptedUser u1(star.leaves[1]->entity);
  star.leaves[1]->entity.bind(20, &u1);
  MulticastGroup group(src_host.entity, 10);
  bool bad_ok = true;
  group.add_member({star.leaves[1]->id, 99},  // unbound TSAP: rejected
                   basic_request({src_host.id, 10}, {star.leaves[1]->id, 99}, 25.0, 1024),
                   [&](auto, bool ok, auto) { bad_ok = ok; });
  group.add_member({star.leaves[1]->id, 20},
                   basic_request({src_host.id, 10}, {star.leaves[1]->id, 20}, 25.0, 1024));
  star.platform.run_until(kSecond);
  EXPECT_FALSE(bad_ok);
  EXPECT_EQ(group.member_count(), 1u);
  EXPECT_EQ(group.submit(std::vector<std::uint8_t>(100, 1)), 1);
}

TEST(Multicast, OrchSpecsShareTheSourceNode) {
  StarPlatform star(3);
  auto& src_host = *star.leaves[0];
  ScriptedUser u1(star.leaves[1]->entity), u2(star.leaves[2]->entity);
  star.leaves[1]->entity.bind(20, &u1);
  star.leaves[2]->entity.bind(20, &u2);
  MulticastGroup group(src_host.entity, 10);
  group.add_member({star.leaves[1]->id, 20},
                   basic_request({src_host.id, 10}, {star.leaves[1]->id, 20}, 25.0, 1024));
  group.add_member({star.leaves[2]->id, 20},
                   basic_request({src_host.id, 10}, {star.leaves[2]->id, 20}, 25.0, 1024));
  star.platform.run_until(kSecond);
  const auto specs = group.orch_specs(2);
  ASSERT_EQ(specs.size(), 2u);
  // The common node is the source: the Fig 5 language-lab shape.
  EXPECT_EQ(orch::Orchestrator::choose_orchestrating_node(specs), src_host.id);
  for (const auto& s : specs) EXPECT_NEAR(s.osdu_rate, 25.0, 0.01);
}

}  // namespace
}  // namespace cmtos::test
