// Byzantine wire-model regressions (DESIGN.md §14): duplication storms
// against the GBN window profile and the rate profile's reassembly, OSDU
// accounting when checksum failures drop fragments mid-OSDU, and the
// malformed-PDU quarantine escalating to a kPeerMisbehaving teardown.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "obs/metrics.h"
#include "util/checksum.h"

namespace cmtos::test {
namespace {

using transport::Connection;
using transport::DisconnectReason;
using transport::ErrorControl;
using transport::Osdu;
using transport::ProtocolProfile;
using transport::VcId;

struct Wire {
  Wire(PairPlatform& w, transport::ConnectRequest req)
      : src_user(w.a->entity), dst_user(w.b->entity) {
    w.a->entity.bind(req.src.tsap, &src_user);
    w.b->entity.bind(req.dst.tsap, &dst_user);
    vc = w.a->entity.t_connect_request(req);
    w.platform.run_until(200 * kMillisecond);
    source = w.a->entity.source(vc);
    sink = w.b->entity.sink(vc);
  }
  ScriptedUser src_user, dst_user;
  VcId vc = transport::kInvalidVc;
  Connection* source = nullptr;
  Connection* sink = nullptr;
};

std::vector<std::uint8_t> payload(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

std::vector<Osdu> drain(Connection& sink) {
  std::vector<Osdu> out;
  while (auto o = sink.receive()) out.push_back(std::move(*o));
  return out;
}

// A duplication storm against the window (GBN) profile: every duplicate DT
// is detected by serial arithmetic against the expected sequence, counted,
// and never delivered twice.
TEST(Byzantine, DuplicationStormWindowProfileNoDoubleDelivery) {
  net::LinkConfig noisy = lan_link();
  noisy.dup_rate = 0.4;
  PairPlatform w(noisy, 21);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.service_class.profile = ProtocolProfile::kWindowBased;
  req.buffer_osdus = 32;
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  constexpr int kCount = 100;
  int submitted = 0;
  std::vector<Osdu> got;
  for (int burst = 0; burst < kCount / 10; ++burst) {
    w.platform.run_until(w.platform.scheduler().now() + 200 * kMillisecond);
    for (int i = 0; i < 10; ++i) submitted += wire.source->submit(payload(300, 1));
    for (auto& o : drain(*wire.sink)) got.push_back(std::move(o));
  }
  w.platform.run_until(w.platform.scheduler().now() + 5 * kSecond);
  for (auto& o : drain(*wire.sink)) got.push_back(std::move(o));

  EXPECT_EQ(submitted, kCount);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kCount));  // never twice
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, static_cast<std::int64_t>(i));
    for (auto b : got[i].data) EXPECT_EQ(b, 1);
  }
  EXPECT_GT(wire.sink->stats().tpdus_dup_dropped, 0);
}

// The same storm against the rate profile: duplicates of completed or
// already-buffered fragments are discarded by the reassembly guards.
TEST(Byzantine, DuplicationStormRateProfileNoDoubleDelivery) {
  net::LinkConfig noisy = lan_link();
  noisy.dup_rate = 0.4;
  PairPlatform w(noisy, 22);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.buffer_osdus = 32;
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  constexpr int kCount = 100;
  int submitted = 0;
  std::vector<Osdu> got;
  for (int burst = 0; burst < kCount / 10; ++burst) {
    w.platform.run_until(w.platform.scheduler().now() + 200 * kMillisecond);
    for (int i = 0; i < 10; ++i) submitted += wire.source->submit(payload(300, 1));
    for (auto& o : drain(*wire.sink)) got.push_back(std::move(o));
  }
  w.platform.run_until(w.platform.scheduler().now() + 5 * kSecond);
  for (auto& o : drain(*wire.sink)) got.push_back(std::move(o));

  EXPECT_EQ(submitted, kCount);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (std::size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i].seq, got[i - 1].seq);
  EXPECT_GT(wire.sink->stats().tpdus_dup_dropped, 0);
}

// Checksum-dropped fragments mid-OSDU: the damaged OSDU is eventually
// skipped (kIndicate never retransmits), its partial frame released, and
// the delivered + skipped accounting covers every submitted OSDU.  Run
// under ASan in CI, a leaked partial would also fail the leak check.
TEST(Byzantine, ChecksumDroppedFragmentAccounting) {
  net::LinkConfig noisy = lan_link();
  noisy.bit_error_rate = 4e-5;
  PairPlatform w(noisy, 23);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 25.0, 4096);
  req.service_class.error_control = ErrorControl::kIndicate;
  req.buffer_osdus = 32;
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  constexpr int kCount = 120;
  int submitted = 0;
  std::vector<Osdu> got;
  for (int burst = 0; burst < kCount / 10; ++burst) {
    w.platform.run_until(w.platform.scheduler().now() + 400 * kMillisecond);
    // 3000-byte OSDUs split into 3 fragments: a single checksum-dropped
    // fragment strands the other two in the reassembly buffer.
    for (int i = 0; i < 10; ++i) submitted += wire.source->submit(payload(3000, 5));
    for (auto& o : drain(*wire.sink)) got.push_back(std::move(o));
  }
  w.platform.run_until(w.platform.scheduler().now() + 10 * kSecond);
  for (auto& o : drain(*wire.sink)) got.push_back(std::move(o));

  EXPECT_EQ(submitted, kCount);
  const auto& st = wire.sink->stats();
  EXPECT_GT(st.tpdus_corrupt, 0);  // the storm actually hit fragments
  EXPECT_GT(st.osdus_skipped, 0);  // damaged OSDUs were given up on
  // Conservation: every OSDU the sink accounted for was either delivered
  // whole or skipped — nothing delivered twice, nothing silently lost.
  // Damaged OSDUs at the very tail of the stream may still sit in
  // reassembly when the run ends (a hole is only given up on when later
  // data needs to get past it), so allow that bounded straggler window.
  EXPECT_LE(st.osdus_delivered + st.osdus_skipped, static_cast<std::int64_t>(kCount));
  EXPECT_GE(st.osdus_delivered + st.osdus_skipped, static_cast<std::int64_t>(kCount) - 8);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(st.osdus_delivered));
  for (const auto& o : got)
    for (auto b : o.data) EXPECT_EQ(b, 5);  // delivered bytes always intact
}

// Sixteen CRC-valid but structurally-invalid control TPDUs from one peer
// escalate the quarantine: the victim tears down that peer's VCs with
// kPeerMisbehaving and drops its traffic pre-decode from then on.
TEST(Byzantine, QuarantineEscalatesToPeerMisbehavingTeardown) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 25.0, 1024);
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);
  ASSERT_TRUE(wire.src_user.disconnects.empty());

  // Structural garbage with a valid CRC trailer: an unknown type tag.
  // Checksum-valid refusals are the only ones that count against a peer.
  auto garbage = [&](std::uint8_t tag) {
    net::Packet pkt;
    pkt.src = w.b->id;
    pkt.dst = w.a->id;
    pkt.proto = net::Proto::kTransportControl;
    pkt.priority = net::Priority::kControl;
    pkt.payload = {tag, 0xde, 0xad, 0xbe, 0xef};
    append_crc32(pkt.payload);
    return pkt;
  };
  for (int i = 0; i < 20; ++i) w.platform.network().send(garbage(99));
  w.platform.run_until(w.platform.scheduler().now() + kSecond);

  // Escalation fired exactly once despite 20 offences (drop-pre-decode
  // afterwards), and the source-side VC heard kPeerMisbehaving.
  const auto quarantined =
      obs::Registry::global()
          .counter("wire.peer_quarantined", {{"node", std::to_string(w.a->id)}})
          .value();
  EXPECT_EQ(quarantined, 1);
  ASSERT_FALSE(wire.src_user.disconnects.empty());
  EXPECT_EQ(wire.src_user.disconnects[0].first, wire.vc);
  EXPECT_EQ(wire.src_user.disconnects[0].second, DisconnectReason::kPeerMisbehaving);
  EXPECT_EQ(w.a->entity.source(wire.vc), nullptr);  // endpoint truly gone
}

// Below the escalation threshold nothing is torn down: a handful of
// malformed PDUs only warns.
TEST(Byzantine, FewMalformedPdusDoNotEscalate) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 25.0, 1024);
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  auto garbage = [&] {
    net::Packet pkt;
    pkt.src = w.b->id;
    pkt.dst = w.a->id;
    pkt.proto = net::Proto::kTransportControl;
    pkt.priority = net::Priority::kControl;
    pkt.payload = {99, 1, 2, 3};
    append_crc32(pkt.payload);
    return pkt;
  };
  for (int i = 0; i < 5; ++i) w.platform.network().send(garbage());
  w.platform.run_until(w.platform.scheduler().now() + kSecond);

  EXPECT_TRUE(wire.src_user.disconnects.empty());
  EXPECT_NE(w.a->entity.source(wire.vc), nullptr);
}

// Checksum failures are line noise, not peer misbehaviour: even a flood of
// them never quarantines anybody.
TEST(Byzantine, ChecksumFailuresNeverQuarantine) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 25.0, 1024);
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  auto bad_crc = [&] {
    net::Packet pkt;
    pkt.src = w.b->id;
    pkt.dst = w.a->id;
    pkt.proto = net::Proto::kTransportControl;
    pkt.priority = net::Priority::kControl;
    pkt.payload = {99, 1, 2, 3, 0, 0, 0, 0};  // trailer never matches
    return pkt;
  };
  for (int i = 0; i < 64; ++i) w.platform.network().send(bad_crc());
  w.platform.run_until(w.platform.scheduler().now() + kSecond);

  EXPECT_TRUE(wire.src_user.disconnects.empty());
  EXPECT_NE(w.a->entity.source(wire.vc), nullptr);
  EXPECT_GT(obs::Registry::global()
                .counter("wire.checksum_failed", {{"pdu", "control"}})
                .value(),
            0);
}

}  // namespace
}  // namespace cmtos::test
