// Unit tests for QoS parameters, tolerance negotiation helpers and TPDU
// wire formats.

#include <gtest/gtest.h>

#include "transport/qos.h"
#include "transport/tpdu.h"

namespace cmtos::transport {
namespace {

QosParams params(double rate, std::int64_t size) {
  QosParams p;
  p.osdu_rate = rate;
  p.max_osdu_bytes = size;
  return p;
}

TEST(Qos, RequiredBpsScalesWithRateAndSize) {
  const auto p1 = params(25, 4096);
  const auto p2 = params(50, 4096);
  const auto p3 = params(25, 8192);
  EXPECT_NEAR(static_cast<double>(p2.required_bps()),
              2.0 * static_cast<double>(p1.required_bps()),
              static_cast<double>(p1.required_bps()) * 0.01);
  EXPECT_GT(p3.required_bps(), p1.required_bps());
  // Overhead: more than raw payload bits.
  EXPECT_GT(p1.required_bps(), static_cast<std::int64_t>(25 * 4096 * 8));
}

TEST(Qos, RequiredBpsChargesPerFragment) {
  // 1400-byte payload fits one fragment; 1401 needs two, so overhead jumps.
  const auto one = params(100, 1400);
  const auto two = params(100, 1401);
  EXPECT_GT(two.required_bps() - one.required_bps(), 100 * 8 * 90);  // ~ header bytes * rate
}

TEST(Qos, AcceptableChecksEveryAxisDirectionally) {
  QosTolerance tol;
  tol.preferred = params(25, 4096);
  tol.worst = params(10, 2048);
  tol.worst.end_to_end_delay = 500 * kMillisecond;
  tol.worst.delay_jitter = 100 * kMillisecond;
  tol.worst.packet_error_rate = 0.1;
  tol.worst.bit_error_rate = 1e-4;

  QosParams offer = params(15, 3000);
  offer.end_to_end_delay = 300 * kMillisecond;
  offer.delay_jitter = 50 * kMillisecond;
  offer.packet_error_rate = 0.05;
  offer.bit_error_rate = 1e-5;
  EXPECT_TRUE(tol.acceptable(offer));

  auto low_rate = offer;
  low_rate.osdu_rate = 5;
  EXPECT_FALSE(tol.acceptable(low_rate));
  auto small_osdu = offer;
  small_osdu.max_osdu_bytes = 100;
  EXPECT_FALSE(tol.acceptable(small_osdu));
  auto slow = offer;
  slow.end_to_end_delay = kSecond;
  EXPECT_FALSE(tol.acceptable(slow));
  auto jittery = offer;
  jittery.delay_jitter = 200 * kMillisecond;
  EXPECT_FALSE(tol.acceptable(jittery));
  auto lossy = offer;
  lossy.packet_error_rate = 0.5;
  EXPECT_FALSE(tol.acceptable(lossy));
  auto noisy = offer;
  noisy.bit_error_rate = 1e-2;
  EXPECT_FALSE(tol.acceptable(noisy));
}

TEST(Qos, DegradePrefersPreferredWhenItFits) {
  QosTolerance tol;
  tol.preferred = params(25, 4096);
  tol.worst = params(5, 4096);
  const auto got = degrade_to_bandwidth(tol, tol.preferred.required_bps() + 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->osdu_rate, 25);
}

TEST(Qos, DegradeScalesRateDownWithinTolerance) {
  QosTolerance tol;
  tol.preferred = params(25, 4096);
  tol.worst = params(5, 4096);
  const auto half = degrade_to_bandwidth(tol, tol.preferred.required_bps() / 2);
  ASSERT_TRUE(half.has_value());
  EXPECT_LT(half->osdu_rate, 25);
  EXPECT_GE(half->osdu_rate, 5);
  EXPECT_LE(half->required_bps(), tol.preferred.required_bps() / 2);
}

TEST(Qos, DegradeFailsBelowWorst) {
  QosTolerance tol;
  tol.preferred = params(25, 4096);
  tol.worst = params(20, 4096);
  EXPECT_FALSE(degrade_to_bandwidth(tol, tol.preferred.required_bps() / 10).has_value());
}

TEST(Qos, IntersectTakesWeakerPreferenceAndStricterFloor) {
  QosTolerance a;
  a.preferred = params(30, 8192);
  a.worst = params(10, 1024);
  QosTolerance b;
  b.preferred = params(25, 4096);
  b.worst = params(15, 2048);
  const auto r = intersect(a, b);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->preferred.osdu_rate, 25);
  EXPECT_EQ(r->preferred.max_osdu_bytes, 4096);
  EXPECT_DOUBLE_EQ(r->worst.osdu_rate, 15);
  EXPECT_EQ(r->worst.max_osdu_bytes, 2048);
}

TEST(Qos, IntersectEmptyWhenRangesDisjoint) {
  QosTolerance a;
  a.preferred = params(10, 4096);
  a.worst = params(8, 4096);
  QosTolerance b;
  b.preferred = params(50, 4096);
  b.worst = params(20, 4096);  // floor above a's ceiling
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Qos, ViolationToString) {
  QosViolation v;
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.to_string(), "");
  v.throughput = true;
  v.jitter = true;
  EXPECT_TRUE(v.any());
  EXPECT_EQ(v.to_string(), "throughput jitter");
}

// --- TPDU wire formats ---

TEST(Tpdu, ControlRoundTrip) {
  ControlTpdu t;
  t.type = TpduType::kCR;
  t.vc = 0x1122334455667788ull;
  t.initiator = {3, 42};
  t.src = {1, 7};
  t.dst = {2, 9};
  t.service_class = {ProtocolProfile::kWindowBased, ErrorControl::kCorrectAndIndicate};
  t.qos.preferred = params(30, 9000);
  t.qos.worst = params(10, 1000);
  t.agreed = params(20, 5000);
  t.sample_period = 250 * kMillisecond;
  t.buffer_osdus = 32;
  t.reason = 4;
  t.accepted = 1;

  const auto wire = t.encode();
  const auto back = ControlTpdu::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, t.type);
  EXPECT_EQ(back->vc, t.vc);
  EXPECT_EQ(back->initiator, t.initiator);
  EXPECT_EQ(back->src, t.src);
  EXPECT_EQ(back->dst, t.dst);
  EXPECT_EQ(back->service_class.profile, t.service_class.profile);
  EXPECT_EQ(back->service_class.error_control, t.service_class.error_control);
  EXPECT_DOUBLE_EQ(back->qos.preferred.osdu_rate, 30);
  EXPECT_EQ(back->qos.worst.max_osdu_bytes, 1000);
  EXPECT_DOUBLE_EQ(back->agreed.osdu_rate, 20);
  EXPECT_EQ(back->sample_period, t.sample_period);
  EXPECT_EQ(back->buffer_osdus, 32u);
  EXPECT_EQ(back->reason, 4);
  EXPECT_EQ(back->accepted, 1);
}

TEST(Tpdu, DataRoundTripWithCrc) {
  DataTpdu dt;
  dt.vc = 99;
  dt.tpdu_seq = 1234;
  dt.osdu_seq = 55;
  dt.event = 0xfeedface;
  dt.frag_index = 2;
  dt.frag_count = 5;
  dt.src_timestamp = 123456789;
  dt.true_submit = 111;
  dt.payload = PayloadView::adopt({1, 2, 3, 4, 5});

  const auto wire = dt.encode();
  const auto back = DataTpdu::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->vc, 99u);
  EXPECT_EQ(back->tpdu_seq, 1234u);
  EXPECT_EQ(back->osdu_seq, 55u);
  EXPECT_EQ(back->event, 0xfeedfaceull);
  EXPECT_EQ(back->frag_index, 2);
  EXPECT_EQ(back->frag_count, 5);
  EXPECT_EQ(back->src_timestamp, 123456789);
  EXPECT_EQ(back->payload, dt.payload);
}

TEST(Tpdu, DataCrcDetectsCorruption) {
  DataTpdu dt;
  dt.vc = 1;
  dt.payload = PayloadView::adopt({9, 9, 9});
  auto wire = dt.encode();
  wire[wire.size() / 2] ^= 0x01;
  WireFault fault = WireFault::kNone;
  EXPECT_FALSE(DataTpdu::decode(wire, &fault).has_value());
  EXPECT_EQ(fault, WireFault::kChecksum);
}

TEST(Tpdu, DecodeFaultTaxonomyOnTruncation) {
  DataTpdu dt;
  dt.vc = 1;
  dt.payload = PayloadView::adopt({1});
  const auto wire = dt.encode();
  EXPECT_TRUE(DataTpdu::decode(wire).has_value());
  WireFault fault = WireFault::kNone;
  const std::vector<std::uint8_t> half(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(DataTpdu::decode(half, &fault).has_value());
  EXPECT_NE(fault, WireFault::kNone);
}

TEST(Tpdu, PacketSplitRoundTripIsZeroCopy) {
  DataTpdu dt;
  dt.vc = 7;
  dt.tpdu_seq = 42;
  dt.osdu_seq = 9;
  dt.frag_index = 1;
  dt.frag_count = 3;
  dt.payload = PayloadView::adopt({10, 20, 30, 40});

  net::Packet pkt;
  dt.encode_onto(pkt);
  // Split wire image charges the link like the flat encoding plus the
  // 4-byte frame-body CRC that guards the detached frame bytes.
  EXPECT_EQ(pkt.payload.size() + pkt.frame.size(), dt.encode().size() + 4);

  const auto back = DataTpdu::decode_packet(pkt);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->vc, 7u);
  EXPECT_EQ(back->tpdu_seq, 42u);
  EXPECT_EQ(back->osdu_seq, 9u);
  EXPECT_EQ(back->frag_index, 1);
  EXPECT_EQ(back->frag_count, 3);
  EXPECT_EQ(back->payload, dt.payload);
  // Zero copy: the decoded payload aliases the very bytes the source wrote.
  EXPECT_EQ(back->payload.data(), dt.payload.data());
}

TEST(Tpdu, PacketSplitDecodeRejectsDamage) {
  DataTpdu dt;
  dt.vc = 7;
  dt.payload = PayloadView::adopt({1, 2, 3});
  net::Packet pkt;
  dt.encode_onto(pkt);

  // Links flip real wire bytes now; damage is caught by the header CRC.
  net::Packet header_damage = pkt;
  header_damage.payload[3] ^= 0x01;
  WireFault fault = WireFault::kNone;
  EXPECT_FALSE(DataTpdu::decode_packet(header_damage, &fault).has_value());
  EXPECT_EQ(fault, WireFault::kChecksum);

  net::Packet length_mismatch = pkt;
  length_mismatch.frame = dt.payload.subview(0, 2);
  fault = WireFault::kNone;
  EXPECT_FALSE(DataTpdu::decode_packet(length_mismatch, &fault).has_value());
  EXPECT_EQ(fault, WireFault::kBadLength);
}

TEST(Tpdu, AckNakFeedbackRoundTrip) {
  AckTpdu ack{.vc = 5, .cumulative_ack = 100, .window = 16};
  const auto a = AckTpdu::decode(ack.encode());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->cumulative_ack, 100u);
  EXPECT_EQ(a->window, 16u);

  NakTpdu nak;
  nak.vc = 5;
  nak.missing = {3, 7, 11};
  const auto n = NakTpdu::decode(nak.encode());
  ASSERT_TRUE(n);
  EXPECT_EQ(n->missing, nak.missing);

  FeedbackTpdu fb{.vc = 5, .free_slots = 3, .capacity = 16, .highest_osdu = 42, .paused = 1};
  const auto f = FeedbackTpdu::decode(fb.encode());
  ASSERT_TRUE(f);
  EXPECT_EQ(f->free_slots, 3u);
  EXPECT_EQ(f->capacity, 16u);
  EXPECT_EQ(f->highest_osdu, 42u);
  EXPECT_EQ(f->paused, 1);
}

TEST(Tpdu, PeekTypeAndVc) {
  DataTpdu dt;
  dt.vc = 0xabcd;
  dt.payload = PayloadView::adopt({1});
  const auto wire = dt.encode();
  EXPECT_EQ(peek_type(wire), TpduType::kDT);
  EXPECT_EQ(peek_vc(wire), 0xabcdu);
  EXPECT_FALSE(peek_type({}).has_value());
}

TEST(Tpdu, MalformedInputRejected) {
  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_FALSE(ControlTpdu::decode(junk).has_value());
  EXPECT_FALSE(DataTpdu::decode(junk).has_value());
  EXPECT_FALSE(AckTpdu::decode(junk).has_value());
  EXPECT_FALSE(NakTpdu::decode(junk).has_value());
  EXPECT_FALSE(FeedbackTpdu::decode(junk).has_value());
}

}  // namespace
}  // namespace cmtos::transport
