// Contract-layer tests: violation reporting policy, the obs metric
// bridge, checked narrowing, and the VC / orchestration state-machine
// transition tables the contract layer enforces.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "orch/llo.h"
#include "transport/connection.h"
#include "util/byte_io.h"
#include "util/contract.h"

namespace cmtos {
namespace {

using contract::set_violation_handler;
using contract::Violation;
using contract::violation_count;
using orch::SessionPhase;
using transport::VcState;

/// Installs a recording handler for the test's scope so violations are
/// observed instead of aborting the (debug) test binary.
class RecordingHandler {
 public:
  RecordingHandler() {
    prev_ = set_violation_handler([this](const Violation& v) {
      checks_.emplace_back(v.check);
      last_ = v;
    });
  }
  ~RecordingHandler() { set_violation_handler(prev_); }

  const std::vector<std::string>& checks() const { return checks_; }
  const Violation& last() const { return last_; }

 private:
  contract::Handler prev_;
  std::vector<std::string> checks_;
  Violation last_{"", "", "", 0};
};

TEST(Contract, HandlerObservesViolationAndExecutionContinues) {
  RecordingHandler rec;
  const std::int64_t before = violation_count();
  CMTOS_ASSERT(1 + 1 == 3, "test.arith");
  ASSERT_EQ(rec.checks().size(), 1u);
  EXPECT_EQ(rec.checks()[0], "test.arith");
  EXPECT_STREQ(rec.last().expr, "1 + 1 == 3");
  EXPECT_NE(rec.last().file, nullptr);
  EXPECT_GT(rec.last().line, 0);
  EXPECT_EQ(violation_count(), before + 1);
}

TEST(Contract, PassingAssertReportsNothing) {
  RecordingHandler rec;
  const std::int64_t before = violation_count();
  CMTOS_ASSERT(2 + 2 == 4, "test.arith");
  CMTOS_INVARIANT(true, "test.inv");
  CMTOS_DCHECK(true);
  EXPECT_TRUE(rec.checks().empty());
  EXPECT_EQ(violation_count(), before);
}

TEST(Contract, HandlerRestoreReturnsPrevious) {
  bool outer_hit = false;
  auto outer = set_violation_handler([&](const Violation&) { outer_hit = true; });
  {
    RecordingHandler rec;  // nests: installs over ours, restores on scope exit
    CMTOS_ASSERT(false, "test.nested");
    EXPECT_EQ(rec.checks().size(), 1u);
    EXPECT_FALSE(outer_hit);
  }
  CMTOS_ASSERT(false, "test.outer");
  EXPECT_TRUE(outer_hit);
  set_violation_handler(std::move(outer));
}

TEST(Contract, ViolationsSurfaceInObsMetricsRegistry) {
  // cmtos_obs installs the metric hook from a static initializer; any
  // violation must bump contract.violations{check=...} even while a test
  // handler suppresses the abort.
  RecordingHandler rec;
  auto& counter =
      obs::Registry::global().counter("contract.violations", {{"check", "test.metric"}});
  const std::int64_t before = counter.value();
  CMTOS_ASSERT(false, "test.metric");
  CMTOS_ASSERT(false, "test.metric");
  EXPECT_EQ(counter.value(), before + 2);
}

TEST(Contract, NarrowFlagsTruncationAndSignFlips) {
  RecordingHandler rec;
  EXPECT_EQ(narrow<std::uint32_t>(std::size_t{7}), 7u);
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
  EXPECT_TRUE(rec.checks().empty());

  (void)narrow<std::uint8_t>(300);  // truncates
  ASSERT_EQ(rec.checks().size(), 1u);
  EXPECT_EQ(rec.checks()[0], "byte_io.narrow");

  (void)narrow<std::uint8_t>(-1);  // sign flip, round-trips numerically otherwise
  EXPECT_EQ(rec.checks().size(), 2u);
}

TEST(Contract, WireEnumChecksFit) {
  enum class Wide : std::uint16_t { kSmall = 3, kHuge = 700 };
  RecordingHandler rec;
  EXPECT_EQ(wire_enum(Wide::kSmall), 3);
  EXPECT_TRUE(rec.checks().empty());
  (void)wire_enum(Wide::kHuge);
  ASSERT_EQ(rec.checks().size(), 1u);
  EXPECT_EQ(rec.checks()[0], "byte_io.narrow");
}

// --- VC lifecycle transition table (§4: connect / data / disconnect) ----

TEST(VcStateMachine, LegalTransitionTable) {
  using transport::vc_transition_legal;
  const VcState all[] = {VcState::kConnecting, VcState::kOpen, VcState::kClosing,
                         VcState::kClosed};
  // Exhaustive expectations: (from, to) -> legal.
  auto legal = [](VcState f, VcState t) {
    return (f == VcState::kConnecting && (t == VcState::kOpen || t == VcState::kClosed)) ||
           (f == VcState::kOpen && (t == VcState::kClosing || t == VcState::kClosed)) ||
           (f == VcState::kClosing && t == VcState::kClosed);
  };
  for (VcState f : all)
    for (VcState t : all)
      EXPECT_EQ(vc_transition_legal(f, t), legal(f, t))
          << transport::to_string(f) << " -> " << transport::to_string(t);
}

TEST(VcStateMachine, ClosedIsTerminal) {
  using transport::vc_transition_legal;
  for (VcState t : {VcState::kConnecting, VcState::kOpen, VcState::kClosing, VcState::kClosed})
    EXPECT_FALSE(vc_transition_legal(VcState::kClosed, t));
}

TEST(VcStateMachine, ToStringNamesEveryState) {
  EXPECT_STREQ(transport::to_string(VcState::kConnecting), "connecting");
  EXPECT_STREQ(transport::to_string(VcState::kOpen), "open");
  EXPECT_STREQ(transport::to_string(VcState::kClosing), "closing");
  EXPECT_STREQ(transport::to_string(VcState::kClosed), "closed");
}

// --- Orchestration session phase table (§6.2: prime/start/stop) ---------

TEST(OrchStateMachine, SteadyPhasesAdmitGroupPrimitives) {
  using orch::orch_transition_legal;
  for (SessionPhase from : {SessionPhase::kIdle, SessionPhase::kPrimed, SessionPhase::kStopped}) {
    EXPECT_TRUE(orch_transition_legal(from, SessionPhase::kPriming)) << orch::to_string(from);
    // An unprimed start is legal: priming only pre-fills sink buffers.
    EXPECT_TRUE(orch_transition_legal(from, SessionPhase::kStarting)) << orch::to_string(from);
  }
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kPrimed, SessionPhase::kStopping));
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kRunning, SessionPhase::kStopping));
}

TEST(OrchStateMachine, TransientPhasesOnlyCommitOrRevert) {
  using orch::orch_transition_legal;
  // While an op is collecting acks no *other* group primitive may begin.
  EXPECT_FALSE(orch_transition_legal(SessionPhase::kPriming, SessionPhase::kStarting));
  EXPECT_FALSE(orch_transition_legal(SessionPhase::kStarting, SessionPhase::kStopping));
  EXPECT_FALSE(orch_transition_legal(SessionPhase::kStopping, SessionPhase::kPriming));
  // Commit edges.
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kPriming, SessionPhase::kPrimed));
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kStarting, SessionPhase::kRunning));
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kStopping, SessionPhase::kStopped));
  // Revert edges (failed / timed-out ops fall back to the issuing phase).
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kStarting, SessionPhase::kIdle));
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kStarting, SessionPhase::kPrimed));
  EXPECT_TRUE(orch_transition_legal(SessionPhase::kStarting, SessionPhase::kStopped));
}

TEST(OrchStateMachine, RunningForbidsPrimeAndStart) {
  using orch::orch_transition_legal;
  EXPECT_FALSE(orch_transition_legal(SessionPhase::kRunning, SessionPhase::kPriming));
  EXPECT_FALSE(orch_transition_legal(SessionPhase::kRunning, SessionPhase::kStarting));
  // Stop while merely idle makes no sense either: nothing is flowing and
  // nothing is primed.
  EXPECT_FALSE(orch_transition_legal(SessionPhase::kIdle, SessionPhase::kStopping));
}

TEST(OrchStateMachine, ToStringAndReasonNames) {
  EXPECT_STREQ(orch::to_string(SessionPhase::kIdle), "idle");
  EXPECT_STREQ(orch::to_string(SessionPhase::kRunning), "running");
  EXPECT_STREQ(orch::to_string(orch::OrchReason::kNotEstablished), "not-established");
  EXPECT_STREQ(orch::to_string(orch::OrchReason::kOpInProgress), "op-in-progress");
  EXPECT_STREQ(orch::to_string(orch::OrchReason::kIllegalTransition), "illegal-transition");
}

}  // namespace
}  // namespace cmtos
