// Connection management tests: Table 1 primitives, the Fig 2/3 remote
// connection facility, QoS option negotiation at establishment, rejection
// and timeout paths, release from both ends and remotely.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using net::NetAddress;
using transport::DisconnectReason;
using transport::QosParams;
using transport::VcId;

struct ThreeHosts {
  ThreeHosts() : star(3) {}
  StarPlatform star;
  platform::Platform& p() { return star.platform; }
  platform::Host& h(std::size_t i) { return *star.leaves[i]; }
};

TEST(Connect, ConventionalEstablishment) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);

  const auto req = basic_request({w.h(0).id, 10}, {w.h(1).id, 20});
  const VcId vc = w.h(0).entity.t_connect_request(req);
  ASSERT_NE(vc, transport::kInvalidVc);
  w.p().run_until(kSecond);

  // Destination saw the indication; source got the confirm.
  ASSERT_EQ(dst_user.connect_indications.size(), 1u);
  EXPECT_EQ(dst_user.connect_indications[0].vc, vc);
  ASSERT_EQ(src_user.confirms.size(), 1u);
  EXPECT_EQ(src_user.confirms[0].first, vc);
  EXPECT_NEAR(src_user.confirms[0].second.osdu_rate, 25.0, 1e-9);

  // Both endpoints exist with the right roles.
  ASSERT_NE(w.h(0).entity.source(vc), nullptr);
  ASSERT_NE(w.h(1).entity.sink(vc), nullptr);
  EXPECT_EQ(w.h(0).entity.source(vc)->state(), transport::VcState::kOpen);

  // A simplex VC reserves data bandwidth in one direction only (§3.1);
  // the reverse path carries just the internal control trickle.
  const auto fwd = w.p().network().reserved_on(w.h(0).id, w.star.hub->id);
  const auto rev = w.p().network().reserved_on(w.star.hub->id, w.h(0).id);
  EXPECT_GT(fwd, 10 * rev);
  EXPECT_EQ(rev, transport::TransportEntity::kControlVcBps);
}

TEST(Connect, RemoteConnectFig3Sequence) {
  // Initiator on host 2 connects TSAP A on host 0 to TSAP B on host 1.
  ThreeHosts w;
  ScriptedUser initiator(w.h(2).entity), src_user(w.h(0).entity), dst_user(w.h(1).entity);
  w.h(2).entity.bind(30, &initiator);
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);

  auto req = basic_request({w.h(0).id, 10}, {w.h(1).id, 20});
  req.initiator = {w.h(2).id, 30};
  const VcId vc = w.h(2).entity.t_connect_request(req);
  w.p().run_until(kSecond);

  // Fig 3: source gets T-Connect.indication, then dest; confirm reaches
  // BOTH the source user and the initiator (§3.5).
  ASSERT_EQ(src_user.connect_indications.size(), 1u);
  EXPECT_EQ(src_user.connect_indications[0].req.initiator, req.initiator);
  ASSERT_EQ(dst_user.connect_indications.size(), 1u);
  ASSERT_EQ(src_user.confirms.size(), 1u);
  ASSERT_EQ(initiator.confirms.size(), 1u);
  EXPECT_EQ(initiator.confirms[0].first, vc);

  ASSERT_NE(w.h(0).entity.source(vc), nullptr);
  ASSERT_NE(w.h(1).entity.sink(vc), nullptr);
}

TEST(Connect, RemoteConnectRejectedBySource) {
  ThreeHosts w;
  ScriptedUser initiator(w.h(2).entity), src_user(w.h(0).entity);
  src_user.accept_connects = false;
  w.h(2).entity.bind(30, &initiator);
  w.h(0).entity.bind(10, &src_user);

  auto req = basic_request({w.h(0).id, 10}, {w.h(1).id, 20});
  req.initiator = {w.h(2).id, 30};
  w.h(2).entity.t_connect_request(req);
  w.p().run_until(kSecond);

  ASSERT_EQ(initiator.disconnects.size(), 1u);
  EXPECT_EQ(initiator.disconnects[0].second, DisconnectReason::kRejectedByUser);
}

TEST(Connect, RejectedByDestinationUser) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  dst_user.accept_connects = false;
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);

  const VcId vc = w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(1).id, 20}));
  w.p().run_until(kSecond);

  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(src_user.disconnects[0].second, DisconnectReason::kRejectedByUser);
  EXPECT_EQ(w.h(0).entity.source(vc), nullptr);
  // Rejection released the reservation.
  EXPECT_EQ(w.p().network().reserved_on(w.h(0).id, w.star.hub->id), 0);
}

TEST(Connect, NoSuchTsapAtDestination) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity);
  w.h(0).entity.bind(10, &src_user);
  w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(1).id, 999}));
  w.p().run_until(kSecond);
  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(src_user.disconnects[0].second, DisconnectReason::kNoSuchTsap);
}

TEST(Connect, NoSuchTsapAtSourceForRemoteConnect) {
  ThreeHosts w;
  ScriptedUser initiator(w.h(2).entity);
  w.h(2).entity.bind(30, &initiator);
  auto req = basic_request({w.h(0).id, 999}, {w.h(1).id, 20});
  req.initiator = {w.h(2).id, 30};
  w.h(2).entity.t_connect_request(req);
  w.p().run_until(kSecond);
  ASSERT_EQ(initiator.disconnects.size(), 1u);
  EXPECT_EQ(initiator.disconnects[0].second, DisconnectReason::kNoSuchTsap);
}

TEST(Connect, AdmissionDegradesRateTowardWorst) {
  // A thin link cannot carry the preferred rate but can carry the worst.
  net::LinkConfig thin = lan_link();
  thin.bandwidth_bps = 1'500'000;
  StarPlatform star(2, thin);
  auto& h0 = *star.leaves[0];
  auto& h1 = *star.leaves[1];
  ScriptedUser src_user(h0.entity), dst_user(h1.entity);
  h0.entity.bind(10, &src_user);
  h1.entity.bind(20, &dst_user);

  // Preferred 25 x 8 KiB ~= 4.4 Mbit/s: too much; worst 6.25/s fits.
  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 8192);
  h0.entity.t_connect_request(req);
  star.platform.run_until(kSecond);

  ASSERT_EQ(src_user.confirms.size(), 1u);
  const QosParams& agreed = src_user.confirms[0].second;
  EXPECT_LT(agreed.osdu_rate, 25.0);
  EXPECT_GE(agreed.osdu_rate, 25.0 / 4);
  EXPECT_LE(agreed.required_bps(),
            static_cast<std::int64_t>(1'500'000 * 0.9) + 1);
}

TEST(Connect, AdmissionRejectsWhenEvenWorstDoesNotFit) {
  net::LinkConfig tiny = lan_link();
  tiny.bandwidth_bps = 100'000;
  StarPlatform star(2, tiny);
  auto& h0 = *star.leaves[0];
  ScriptedUser src_user(h0.entity);
  h0.entity.bind(10, &src_user);

  h0.entity.t_connect_request(basic_request({h0.id, 10}, {star.leaves[1]->id, 20}, 25.0, 8192));
  star.platform.run_until(kSecond);
  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(src_user.disconnects[0].second, DisconnectReason::kNoResources);
}

TEST(Connect, DelayInfeasiblePathRejected) {
  net::LinkConfig slow = lan_link();
  slow.propagation_delay = 2 * kSecond;  // satellite from hell
  StarPlatform star(2, slow);
  auto& h0 = *star.leaves[0];
  ScriptedUser src_user(h0.entity);
  h0.entity.bind(10, &src_user);

  h0.entity.t_connect_request(basic_request({h0.id, 10}, {star.leaves[1]->id, 20}));
  star.platform.run_until(10 * kSecond);
  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(src_user.disconnects[0].second, DisconnectReason::kQosUnachievable);
}

TEST(Connect, DestinationMayNarrowOffer) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  QosParams narrowed;
  narrowed.osdu_rate = 12.5;
  narrowed.max_osdu_bytes = 4096;
  narrowed.end_to_end_delay = 500 * kMillisecond;
  narrowed.delay_jitter = 100 * kMillisecond;
  narrowed.packet_error_rate = 0.05;
  narrowed.bit_error_rate = 1e-4;
  dst_user.narrow = narrowed;
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);

  w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(1).id, 20}));
  w.p().run_until(kSecond);

  ASSERT_EQ(src_user.confirms.size(), 1u);
  EXPECT_DOUBLE_EQ(src_user.confirms[0].second.osdu_rate, 12.5);
}

TEST(Connect, NarrowingOutsideToleranceIgnored) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  QosParams bogus;
  bogus.osdu_rate = 1000.0;  // more than offered: not a narrowing
  dst_user.narrow = bogus;
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);

  w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(1).id, 20}));
  w.p().run_until(kSecond);
  ASSERT_EQ(src_user.confirms.size(), 1u);
  EXPECT_DOUBLE_EQ(src_user.confirms[0].second.osdu_rate, 25.0);
}

TEST(Connect, UnreachableDestinationTimesOut) {
  // Destination island: no link.
  platform::Platform p;
  auto& a = p.add_host("a");
  auto& island = p.add_host("island");
  p.network().finalize_routes();
  ScriptedUser src_user(a.entity);
  a.entity.bind(10, &src_user);
  a.entity.set_connect_timeout(500 * kMillisecond);

  a.entity.t_connect_request(basic_request({a.id, 10}, {island.id, 20}));
  p.run_until(2 * kSecond);
  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(src_user.disconnects[0].second, DisconnectReason::kUnreachable);
}

TEST(Disconnect, SourceInitiatedReleasesBothEndsAndReservation) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);
  const VcId vc = w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(1).id, 20}));
  w.p().run_until(kSecond);
  ASSERT_NE(w.h(0).entity.source(vc), nullptr);

  w.h(0).entity.t_disconnect_request(vc);
  w.p().run_until(2 * kSecond);
  EXPECT_EQ(w.h(0).entity.source(vc), nullptr);
  EXPECT_EQ(w.h(1).entity.sink(vc), nullptr);
  ASSERT_EQ(dst_user.disconnects.size(), 1u);
  EXPECT_EQ(w.p().network().reserved_on(w.h(0).id, w.star.hub->id), 0);
}

TEST(Disconnect, SinkInitiatedReleasesReservationAtSource) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);
  const VcId vc = w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(1).id, 20}));
  w.p().run_until(kSecond);

  w.h(1).entity.t_disconnect_request(vc);
  w.p().run_until(2 * kSecond);
  EXPECT_EQ(w.h(0).entity.source(vc), nullptr);
  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(w.p().network().reserved_on(w.h(0).id, w.star.hub->id), 0);
}

TEST(Disconnect, RemoteReleaseDeliversIndicationToEndpoint) {
  // §4.1.1: remote release puts a T-Disconnect.indication to the attached
  // application, which may then release the VC itself.
  ThreeHosts w;
  ScriptedUser initiator(w.h(2).entity), src_user(w.h(0).entity), dst_user(w.h(1).entity);
  w.h(2).entity.bind(30, &initiator);
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);
  auto req = basic_request({w.h(0).id, 10}, {w.h(1).id, 20});
  req.initiator = {w.h(2).id, 30};
  const VcId vc = w.h(2).entity.t_connect_request(req);
  w.p().run_until(kSecond);
  ASSERT_EQ(initiator.confirms.size(), 1u);

  w.h(2).entity.t_remote_disconnect_request(vc, {w.h(0).id, 10});
  w.p().run_until(1200 * kMillisecond);
  ASSERT_EQ(src_user.disconnects.size(), 1u);
  EXPECT_EQ(src_user.disconnects[0].second, DisconnectReason::kUserInitiated);
  // The source user honours it:
  w.h(0).entity.t_disconnect_request(vc);
  w.p().run_until(2 * kSecond);
  EXPECT_EQ(w.h(0).entity.source(vc), nullptr);
  EXPECT_EQ(w.h(1).entity.sink(vc), nullptr);
}

TEST(Connect, NodeLocalVcNeedsNoReservation) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(0).entity);
  w.h(0).entity.bind(10, &src_user);
  w.h(0).entity.bind(20, &dst_user);
  const VcId vc = w.h(0).entity.t_connect_request(basic_request({w.h(0).id, 10}, {w.h(0).id, 20}));
  w.p().run_until(kSecond);
  ASSERT_EQ(src_user.confirms.size(), 1u);
  ASSERT_NE(w.h(0).entity.source(vc), nullptr);
  ASSERT_NE(w.h(0).entity.sink(vc), nullptr);
  EXPECT_EQ(w.h(0).entity.source(vc)->reservation(), net::kNoReservation);
}

TEST(Connect, ConcurrentVcsGetDistinctIds) {
  ThreeHosts w;
  ScriptedUser src_user(w.h(0).entity), dst_user(w.h(1).entity);
  w.h(0).entity.bind(10, &src_user);
  w.h(1).entity.bind(20, &dst_user);
  const VcId v1 = w.h(0).entity.t_connect_request(
      basic_request({w.h(0).id, 10}, {w.h(1).id, 20}, 5.0, 1024));
  const VcId v2 = w.h(0).entity.t_connect_request(
      basic_request({w.h(0).id, 10}, {w.h(1).id, 20}, 5.0, 1024));
  EXPECT_NE(v1, v2);
  w.p().run_until(kSecond);
  EXPECT_EQ(src_user.confirms.size(), 2u);
  EXPECT_NE(w.h(0).entity.source(v1), nullptr);
  EXPECT_NE(w.h(0).entity.source(v2), nullptr);
}

TEST(Connect, InitiatorMustBeLocal) {
  ThreeHosts w;
  auto req = basic_request({w.h(0).id, 10}, {w.h(1).id, 20});
  // Issued at host 1 but claiming initiator on host 0.
  EXPECT_EQ(w.h(1).entity.t_connect_request(req), transport::kInvalidVc);
}

}  // namespace
}  // namespace cmtos::test
