// Failure injection: components die or misbehave mid-session and the rest
// of the system must degrade gracefully, not crash or wedge.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;
using orch::OrchPolicy;

struct PlayWorld {
  PlayWorld() : star(2, lan_link(), 777) {
    server_host = star.leaves[0];
    ws = star.leaves[1];
    p = &star.platform;
    server = std::make_unique<StoredMediaServer>(*p, *server_host, "s");
    TrackConfig t;
    t.track_id = 1;
    t.auto_start = false;
    t.vbr.base_bytes = 1024;
    src = server->add_track(100, t);
    RenderConfig rc;
    rc.expect_track = 1;
    sink = std::make_unique<RenderingSink>(*p, *ws, 200, rc);
    stream = std::make_unique<platform::Stream>(*p, *ws, "s");
    platform::VideoQos vq;
    vq.frames_per_second = 25;
    stream->connect(src, {ws->id, 200}, vq, {}, nullptr);
    p->run_until(500 * kMillisecond);
    EXPECT_TRUE(stream->connected());
  }
  StarPlatform star;
  platform::Platform* p = nullptr;
  platform::Host* server_host = nullptr;
  platform::Host* ws = nullptr;
  std::unique_ptr<StoredMediaServer> server;
  std::unique_ptr<RenderingSink> sink;
  std::unique_ptr<platform::Stream> stream;
  net::NetAddress src;
};

TEST(FailureInjection, VcClosedDuringRegulationDetachesGracefully) {
  PlayWorld w;
  auto& llo = w.ws->llo;
  llo.orch_request(1, {w.stream->orch_spec().vc}, nullptr);
  w.p->run_until(kSecond);
  llo.prime(1, false, nullptr);
  w.p->run_until(3 * kSecond);
  llo.start(1, nullptr);
  w.p->run_until(4 * kSecond);
  ASSERT_EQ(llo.local_vc_count(), 1u);

  // Regulation is in flight; the VC dies underneath it.
  llo.regulate(1, w.stream->orch_spec().vc.vc, 10, 2, 400 * kMillisecond, 1, true);
  w.p->run_until(w.p->scheduler().now() + 100 * kMillisecond);
  w.ws->entity.t_disconnect_request(w.stream->orch_spec().vc.vc);
  // No crash; the endpoint state dissolves as the slots discover the loss.
  w.p->run_until(w.p->scheduler().now() + 2 * kSecond);
  EXPECT_EQ(llo.local_vc_count(), 0u);
}

TEST(FailureInjection, LinkBlackoutDiagnosedAsTransportFailure) {
  PlayWorld w;
  OrchPolicy policy;
  policy.interval = 200 * kMillisecond;
  policy.fail_threshold = 3;
  policy.on_failure = OrchPolicy::OnFailure::kNotifyOnly;
  auto session = w.p->orchestrator().orchestrate({w.stream->orch_spec(0)}, policy, nullptr);
  w.p->run_until(w.p->scheduler().now() + 500 * kMillisecond);
  session->prime(false, nullptr);
  w.p->run_until(w.p->scheduler().now() + 2 * kSecond);
  session->start(nullptr);
  w.p->run_until(w.p->scheduler().now() + 2 * kSecond);

  std::vector<orch::MissDiagnosis> escalations;
  session->agent().set_escalation_callback(
      [&](transport::VcId, orch::MissDiagnosis d, const orch::RegulateIndication&) {
        escalations.push_back(d);
      });
  // Total blackout on the data path.
  w.p->network().link(w.server_host->id, w.star.hub->id)->set_loss_rate(1.0);
  w.p->run_until(w.p->scheduler().now() + 10 * kSecond);

  ASSERT_FALSE(escalations.empty());
  EXPECT_EQ(escalations.front(), orch::MissDiagnosis::kTransportTooSlow);
}

TEST(FailureInjection, PrimeTimesOutWhenPipelineCannotFill) {
  // The track holds fewer frames than the ring: the sink buffer can never
  // fill, so Orch.Prime must fail by timeout rather than hang forever.
  StarPlatform star(2, lan_link(), 5);
  auto& p = star.platform;
  StoredMediaServer server(p, *star.leaves[0], "s");
  TrackConfig t;
  t.track_id = 1;
  t.auto_start = false;
  t.frame_count = 3;  // ring default is 16
  t.vbr.base_bytes = 512;
  const auto src = server.add_track(100, t);
  RenderingSink sink(p, *star.leaves[1], 200, {});
  platform::Stream stream(p, *star.leaves[1], "s");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {star.leaves[1]->id, 200}, vq, {}, nullptr);
  p.run_until(500 * kMillisecond);
  ASSERT_TRUE(stream.connected());

  auto& llo = star.leaves[1]->llo;
  llo.orch_request(1, {stream.orch_spec().vc}, nullptr);
  p.run_until(kSecond);
  bool done = false, ok = true;
  orch::OrchReason reason = orch::OrchReason::kOk;
  llo.prime(1, false, [&](bool o, orch::OrchReason r) {
    done = true;
    ok = o;
    reason = r;
  });
  p.run_until(10 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(reason, orch::OrchReason::kTimeout);
}

TEST(FailureInjection, RegulateForUnknownVcIsIgnored) {
  PlayWorld w;
  auto& llo = w.ws->llo;
  llo.orch_request(1, {w.stream->orch_spec().vc}, nullptr);
  w.p->run_until(kSecond);
  llo.regulate(1, 0xdead, 10, 2, 100 * kMillisecond, 1, true);
  llo.register_event(1, 0xdead, 42);
  llo.delayed(1, 0xdead, true, 5);
  w.p->run_until(w.p->scheduler().now() + kSecond);  // no crash, no effect
  EXPECT_TRUE(llo.has_session(1));
}

TEST(FailureInjection, GarbageOpdusAndTpdusAreDiscarded) {
  PlayWorld w;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    net::Packet pkt;
    pkt.src = w.server_host->id;
    pkt.dst = w.ws->id;
    pkt.proto = static_cast<net::Proto>(1 + (i % 4));
    pkt.payload.resize(static_cast<std::size_t>(rng.uniform(0, 64)));
    for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    w.p->network().send(std::move(pkt));
  }
  w.p->run_until(w.p->scheduler().now() + kSecond);
  // The stream still works afterwards.
  auto* source = w.server_host->entity.source(w.stream->vc());
  ASSERT_NE(source, nullptr);
  ASSERT_TRUE(source->submit(std::vector<std::uint8_t>(100, 1)));
  w.p->run_until(w.p->scheduler().now() + kSecond);
  auto* sink_conn = w.ws->entity.sink(w.stream->vc());
  EXPECT_GE(sink_conn->stats().osdus_completed, 1);
}

TEST(FailureInjection, SinkDisconnectMidFlowNotifiesSourceAndReleases) {
  PlayWorld w;
  auto* source = w.server_host->entity.source(w.stream->vc());
  ASSERT_NE(source, nullptr);
  for (int i = 0; i < 10; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
  w.p->run_until(w.p->scheduler().now() + 200 * kMillisecond);

  w.ws->entity.t_disconnect_request(w.stream->vc());
  w.p->run_until(w.p->scheduler().now() + kSecond);
  EXPECT_EQ(w.server_host->entity.source(w.stream->vc()), nullptr);
  EXPECT_EQ(w.p->network().reserved_on(w.server_host->id, w.star.hub->id), 0);
  // Stray in-flight data TPDUs for the dead VC are dropped harmlessly.
  w.p->run_until(w.p->scheduler().now() + kSecond);
}

TEST(FailureInjection, SessionReleaseDuringPendingPrime) {
  PlayWorld w;
  auto& llo = w.ws->llo;
  llo.orch_request(1, {w.stream->orch_spec().vc}, nullptr);
  w.p->run_until(kSecond);
  bool done = false;
  llo.prime(1, false, [&](bool, auto) { done = true; });
  // Release immediately, before the prime can confirm.
  llo.orch_release(1);
  w.p->run_until(10 * kSecond);
  EXPECT_FALSE(llo.has_session(1));
  (void)done;  // the pending op may time out silently; the point is no wedge
  EXPECT_EQ(w.ws->llo.local_vc_count(), 0u);
}

TEST(FailureInjection, ExampleScaleSoakRunStaysConsistent) {
  // Longer soak: 8 streams, periodic degradation pulses, stop/start cycles.
  platform::Platform p(31337);
  auto& server_host = p.add_host("server");
  auto& ws = p.add_host("ws");
  net::LinkConfig fat = lan_link();
  fat.bandwidth_bps = 100'000'000;
  p.network().add_link(server_host.id, ws.id, fat);
  p.network().finalize_routes();

  StoredMediaServer server(p, server_host, "s");
  std::vector<std::unique_ptr<RenderingSink>> sinks;
  std::vector<std::unique_ptr<platform::Stream>> streams;
  std::vector<orch::OrchStreamSpec> specs;
  for (std::size_t i = 0; i < 8; ++i) {
    TrackConfig t;
    t.track_id = static_cast<std::uint32_t>(i + 1);
    t.auto_start = false;
    t.vbr.base_bytes = 1024;
    const auto src = server.add_track(static_cast<net::Tsap>(100 + i), t);
    RenderConfig rc;
    rc.expect_track = t.track_id;
    sinks.push_back(std::make_unique<RenderingSink>(p, ws, static_cast<net::Tsap>(200 + i), rc));
    streams.push_back(std::make_unique<platform::Stream>(p, ws, "s" + std::to_string(i)));
    platform::VideoQos vq;
    vq.frames_per_second = 25;
    streams.back()->connect(src, {ws.id, static_cast<net::Tsap>(200 + i)}, vq, {}, nullptr);
  }
  p.run_until(kSecond);
  for (auto& s : streams) {
    ASSERT_TRUE(s->connected());
    specs.push_back(s->orch_spec(2));
  }
  auto session = p.orchestrator().orchestrate(specs, {}, nullptr);
  p.run_until(p.scheduler().now() + 500 * kMillisecond);
  session->prime(false, nullptr);
  p.run_until(p.scheduler().now() + 2 * kSecond);
  session->start(nullptr);

  for (int cycle = 0; cycle < 3; ++cycle) {
    p.run_until(p.scheduler().now() + 5 * kSecond);
    p.network().link(server_host.id, ws.id)->set_loss_rate(0.1);  // pulse
    p.run_until(p.scheduler().now() + 2 * kSecond);
    p.network().link(server_host.id, ws.id)->set_loss_rate(0.0);
    session->stop(nullptr);
    p.run_until(p.scheduler().now() + kSecond);
    session->start(nullptr);
  }
  p.run_until(p.scheduler().now() + 5 * kSecond);

  for (auto& s : sinks) {
    EXPECT_GT(s->stats().frames_rendered, 400);
    EXPECT_EQ(s->stats().integrity_failures, 0);
  }
}

}  // namespace
}  // namespace cmtos::test
