// Tests for the §7 future-work extensions: clock synchronisation within
// the orchestrator protocol, orchestration without a common node, the
// datagram service, and link-level priority queueing.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;
using orch::ClockEstimate;
using orch::OrchPolicy;

// --------------------------------------------------------------------
// Clock synchronisation (§5 footnote)
// --------------------------------------------------------------------

TEST(ClockSync, EstimatesStaticOffset) {
  PairPlatform w(lan_link(), 5, sim::LocalClock{}, sim::LocalClock(250 * kMillisecond, 0));
  ClockEstimate est;
  bool done = false;
  w.a->llo.estimate_clock_offset(w.b->id, 8, [&](const ClockEstimate& e) {
    est = e;
    done = true;
  });
  w.platform.run_until(kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(est.probes_answered, 8);
  // True offset 250 ms; symmetric path, so the estimate is near-exact.
  EXPECT_NEAR(to_millis(est.offset), 250.0, 1.0);
  // Error bound = rtt/2 ~ (2 * (1 ms + serialisation)) / 2.
  EXPECT_LT(est.error_bound, 5 * kMillisecond);
  EXPECT_GE(est.error_bound, 1 * kMillisecond);
}

TEST(ClockSync, NegativeOffsetAndJitterTolerance) {
  net::LinkConfig link = lan_link();
  link.jitter = 5 * kMillisecond;  // asymmetric per-probe noise
  PairPlatform w(link, 5, sim::LocalClock{}, sim::LocalClock(-40 * kMillisecond, 0));
  ClockEstimate est;
  w.a->llo.estimate_clock_offset(w.b->id, 16, [&](const ClockEstimate& e) { est = e; });
  w.platform.run_until(2 * kSecond);
  EXPECT_EQ(est.probes_answered, 16);
  // min-RTT filtering keeps the error within the bound despite jitter.
  EXPECT_NEAR(to_millis(est.offset), -40.0, to_millis(est.error_bound) + 0.5);
}

TEST(ClockSync, UnreachablePeerTimesOutWithZeroProbes) {
  platform::Platform p;
  auto& a = p.add_host("a");
  auto& island = p.add_host("island");
  p.network().finalize_routes();
  ClockEstimate est;
  bool done = false;
  a.llo.estimate_clock_offset(island.id, 4, [&](const ClockEstimate& e) {
    est = e;
    done = true;
  });
  p.run_until(5 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(est.probes_answered, 0);
}

TEST(ClockSync, DriftingPeerOffsetGrows) {
  // +10000 ppm peer: after ~2 s its clock leads by ~20 ms.
  PairPlatform w(lan_link(), 5, sim::LocalClock{}, sim::LocalClock(0, 10000));
  w.platform.run_until(2 * kSecond);
  ClockEstimate est;
  w.a->llo.estimate_clock_offset(w.b->id, 4, [&](const ClockEstimate& e) { est = e; });
  w.platform.run_until(3 * kSecond);
  EXPECT_NEAR(to_millis(est.offset), 20.0, 2.0);
}

// --------------------------------------------------------------------
// Orchestration without a common node (§7)
// --------------------------------------------------------------------

TEST(NoCommonNode, RejectedByDefaultAllowedByPolicy) {
  // video: serverA -> wsA, audio: serverB -> wsB — no shared endpoint.
  platform::Platform p(404);
  auto& server_a = p.add_host("serverA", sim::LocalClock(0, 3000));
  auto& server_b = p.add_host("serverB", sim::LocalClock(0, -3000));
  auto& ws_a = p.add_host("wsA");
  auto& ws_b = p.add_host("wsB");
  auto& hub = p.add_host("hub");
  for (auto* h : {&server_a, &server_b, &ws_a, &ws_b})
    p.network().add_link(hub.id, h->id, lan_link());
  p.network().finalize_routes();

  platform::VideoQos vq;
  vq.frames_per_second = 25;
  platform::AudioQos aq;
  aq.blocks_per_second = 50;

  StoredMediaServer sa(p, server_a, "a");
  TrackConfig video;
  video.track_id = 1;
  video.auto_start = false;
  video.vbr.base_bytes = vq.frame_bytes();
  video.vbr.gop = 0;
  video.vbr.wobble = 0;
  const auto vsrc = sa.add_track(100, video);
  StoredMediaServer sb(p, server_b, "b");
  TrackConfig audio;
  audio.track_id = 2;
  audio.auto_start = false;
  audio.vbr.base_bytes = aq.block_bytes();
  audio.vbr.gop = 0;
  audio.vbr.wobble = 0;
  const auto asrc = sb.add_track(100, audio);

  RenderConfig vr;
  vr.expect_track = 1;
  RenderingSink vsink(p, ws_a, 200, vr);
  RenderConfig ar;
  ar.expect_track = 2;
  RenderingSink asink(p, ws_b, 200, ar);

  platform::Stream vstream(p, ws_a, "v"), astream(p, ws_b, "a");
  vstream.set_buffer_osdus(6);
  astream.set_buffer_osdus(6);
  vstream.connect(vsrc, {ws_a.id, 200}, vq, {}, nullptr);
  astream.connect(asrc, {ws_b.id, 200}, aq, {}, nullptr);
  p.run_until(500 * kMillisecond);
  ASSERT_TRUE(vstream.connected() && astream.connected());

  // Default policy: the initial-implementation restriction applies.
  auto rejected = p.orchestrator().orchestrate({vstream.orch_spec(2), astream.orch_spec(2)},
                                               OrchPolicy{}, nullptr);
  EXPECT_EQ(rejected, nullptr);

  // §7 extension: lift the restriction.
  OrchPolicy policy;
  policy.allow_no_common_node = true;
  policy.interval = 100 * kMillisecond;
  bool established = false;
  auto session = p.orchestrator().orchestrate({vstream.orch_spec(2), astream.orch_spec(2)},
                                              policy, [&](bool ok, auto) { established = ok; });
  ASSERT_NE(session, nullptr);
  p.run_until(kSecond);
  ASSERT_TRUE(established);

  // The whole machinery still works across four nodes: prime, atomic
  // start, continuous regulation against +/-3000 ppm differential drift.
  bool primed = false, started = false;
  session->prime(false, [&](bool ok, auto) { primed = ok; });
  p.run_until(3 * kSecond);
  ASSERT_TRUE(primed);
  session->start([&](bool ok, auto) { started = ok; });
  p.run_until(3500 * kMillisecond);
  ASSERT_TRUE(started);

  media::SyncMeter meter(p.scheduler());
  meter.add_stream("video", &vsink);
  meter.add_stream("audio", &asink);
  meter.begin(100 * kMillisecond);
  p.run_until(60 * kSecond);

  EXPECT_GT(vsink.stats().frames_rendered, 1000);
  EXPECT_GT(asink.stats().frames_rendered, 2000);
  // Free-running, 6000 ppm differential would reach ~340 ms over 56 s;
  // regulation keeps it bounded (start skew across distinct sinks adds a
  // little slack vs the common-node case).
  EXPECT_LT(meter.max_abs_skew_seconds(), 0.12);
}

// --------------------------------------------------------------------
// Datagram service
// --------------------------------------------------------------------

struct DatagramUser : transport::TransportUser {
  void t_connect_indication(transport::VcId, const transport::ConnectRequest&) override {}
  void t_connect_confirm(transport::VcId, const transport::QosParams&) override {}
  void t_disconnect_indication(transport::VcId, transport::DisconnectReason) override {}
  void t_unitdata_indication(const net::NetAddress& from, net::Tsap,
                             std::span<const std::uint8_t> data) override {
    sources.push_back(from);
    payloads.emplace_back(data.begin(), data.end());
  }
  std::vector<net::NetAddress> sources;
  std::vector<std::vector<std::uint8_t>> payloads;
};

TEST(Datagram, DeliveredWithSourceAddress) {
  PairPlatform w;
  DatagramUser user;
  w.b->entity.bind(9, &user);
  w.a->entity.t_unitdata_request(4, {w.b->id, 9}, {1, 2, 3});
  w.platform.run_until(100 * kMillisecond);
  ASSERT_EQ(user.payloads.size(), 1u);
  EXPECT_EQ(user.payloads[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(user.sources[0], (net::NetAddress{w.a->id, 4}));
}

TEST(Datagram, UnboundTsapSilentlyDropped) {
  PairPlatform w;
  w.a->entity.t_unitdata_request(4, {w.b->id, 99}, {1});
  w.platform.run_until(100 * kMillisecond);  // must not crash or leak
}

TEST(Datagram, BestEffortUnderLoss) {
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.4;
  PairPlatform w(lossy, 77);
  DatagramUser user;
  w.b->entity.bind(9, &user);
  for (int i = 0; i < 200; ++i)
    w.a->entity.t_unitdata_request(4, {w.b->id, 9}, {static_cast<std::uint8_t>(i)});
  w.platform.run_until(2 * kSecond);
  // Roughly the survival rate arrives; nothing is retransmitted.
  EXPECT_GT(user.payloads.size(), 80u);
  EXPECT_LT(user.payloads.size(), 160u);
}

// --------------------------------------------------------------------
// Link priority bands
// --------------------------------------------------------------------

TEST(Priority, ControlOvertakesBulkUnderCongestion) {
  sim::Scheduler sched;
  net::Network net(sched, Rng(1));
  net::LinkConfig slow;
  slow.bandwidth_bps = 800'000;  // 10 ms per 1000-byte packet
  slow.propagation_delay = 0;
  slow.queue_limit_packets = 64;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_link(a, b, slow);
  net.finalize_routes();

  std::vector<std::pair<net::Priority, Time>> arrivals;
  net.node(b).set_handler(net::Proto::kTransportData, [&](net::Packet&& p) {
    arrivals.emplace_back(p.priority, sched.now());
  });

  // 20 bulk media packets first, then one control packet.
  for (int i = 0; i < 20; ++i) {
    net::Packet p;
    p.src = a;
    p.dst = b;
    p.proto = net::Proto::kTransportData;
    p.priority = net::Priority::kMedia;
    p.payload.assign(968, 0);
    net.send(std::move(p));
  }
  net::Packet ctl;
  ctl.src = a;
  ctl.dst = b;
  ctl.proto = net::Proto::kTransportData;
  ctl.priority = net::Priority::kControl;
  ctl.payload.assign(68, 0);
  net.send(std::move(ctl));
  sched.run();

  ASSERT_EQ(arrivals.size(), 21u);
  // The control packet jumped the 19 queued media packets (it waits only
  // for the frame already on the wire).
  std::size_t ctl_pos = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    if (arrivals[i].first == net::Priority::kControl) ctl_pos = i;
  EXPECT_LE(ctl_pos, 2u);
}

TEST(Priority, OverflowEvictsLowerBandFirst) {
  sim::Scheduler sched;
  net::Network net(sched, Rng(1));
  net::LinkConfig tiny;
  tiny.bandwidth_bps = 80'000;
  tiny.propagation_delay = 0;
  tiny.queue_limit_packets = 4;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_link(a, b, tiny);
  net.finalize_routes();

  int datagrams = 0, controls = 0;
  net.node(b).set_handler(net::Proto::kTransportData, [&](net::Packet&& p) {
    if (p.priority == net::Priority::kDatagram) ++datagrams;
    if (p.priority == net::Priority::kControl) ++controls;
  });

  auto send = [&](net::Priority prio) {
    net::Packet p;
    p.src = a;
    p.dst = b;
    p.proto = net::Proto::kTransportData;
    p.priority = prio;
    p.payload.assign(100, 0);
    net.send(std::move(p));
  };
  // Fill the queue with datagrams, then offer control packets: control
  // packets evict queued datagrams (the frame already committed to the
  // wire is untouchable, so it holds one slot).
  for (int i = 0; i < 6; ++i) send(net::Priority::kDatagram);
  for (int i = 0; i < 4; ++i) send(net::Priority::kControl);
  sched.run();
  EXPECT_GE(controls, 3);   // all but the slot pinned by the in-flight frame
  EXPECT_LE(datagrams, 2);  // the committed one (and at most one survivor)
}

TEST(Priority, DatagramFloodDoesNotStarveMediaQos) {
  // A datagram flood shares the link with a CM stream; the stream's
  // contract holds because media outranks datagrams.
  PairPlatform w(lan_link(), 5);
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 4096);
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(200 * kMillisecond);
  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  ASSERT_NE(source, nullptr);

  std::int64_t delivered = 0;
  for (int round = 0; round < 100; ++round) {
    while (source->submit(std::vector<std::uint8_t>(4000, 1))) {
    }
    // ~12 Mbit/s of datagram flood into the 10 Mbit/s link.
    for (int i = 0; i < 15; ++i)
      w.a->entity.t_unitdata_request(3, {w.b->id, 99}, std::vector<std::uint8_t>(1000, 2));
    w.platform.run_until(w.platform.scheduler().now() + 10 * kMillisecond);
    while (sink->receive()) ++delivered;
  }
  // 1 second at 50/s contract: the stream rides the higher band.
  EXPECT_GE(delivered, 40);
  EXPECT_EQ(sink->stats().tpdus_lost, 0);
}

}  // namespace
}  // namespace cmtos::test
