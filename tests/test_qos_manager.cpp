// Tests for the closed-loop graceful-degradation layer: degradation-ladder
// construction, the LadderState hysteresis core (including the
// no-oscillation backoff property), and the QosManager driving a live
// stream down and back up its ladder.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "platform/qos_manager.h"

namespace cmtos::test {
namespace {

using platform::AudioQos;
using platform::LadderRung;
using platform::LadderState;
using platform::MediaQos;
using platform::QosManager;
using platform::TextQos;
using platform::VideoQos;

// ====================================================================
// build_ladder
// ====================================================================

TEST(BuildLadder, VideoTradesRateAndFidelityTowardTheFloor) {
  VideoQos vq;
  vq.frames_per_second = 25;
  const auto base = platform::to_transport_qos(MediaQos{vq});
  const auto ladder = platform::build_ladder(MediaQos{vq}, 4);
  ASSERT_EQ(ladder.size(), 4u);

  // Rung 0 is the preferred service.
  const auto* v0 = std::get_if<VideoQos>(&ladder[0].media);
  ASSERT_NE(v0, nullptr);
  EXPECT_NEAR(v0->frames_per_second, 25.0, 1e-9);

  // Frame rate monotonically non-increasing, compression non-decreasing,
  // jitter/error tolerance monotonically relaxing.
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    const auto* prev = std::get_if<VideoQos>(&ladder[i - 1].media);
    const auto* cur = std::get_if<VideoQos>(&ladder[i].media);
    ASSERT_NE(cur, nullptr);
    EXPECT_LE(cur->frames_per_second, prev->frames_per_second);
    EXPECT_GE(cur->compression, prev->compression);
    EXPECT_GE(ladder[i].tolerance.preferred.delay_jitter,
              ladder[i - 1].tolerance.preferred.delay_jitter);
    EXPECT_GE(ladder[i].tolerance.preferred.packet_error_rate,
              ladder[i - 1].tolerance.preferred.packet_error_rate);
  }

  // The last rung IS the floor, and no rung concedes below it.
  const auto* vfloor = std::get_if<VideoQos>(&ladder.back().media);
  EXPECT_NEAR(vfloor->frames_per_second, base.worst.osdu_rate, 1e-9);
  for (const LadderRung& rung : ladder) {
    EXPECT_GE(rung.tolerance.worst.osdu_rate, base.worst.osdu_rate - 1e-9);
    EXPECT_LE(rung.tolerance.worst.end_to_end_delay, base.worst.end_to_end_delay);
  }
}

TEST(BuildLadder, AudioPreservesBlockRateAndBottomsSampleRate) {
  AudioQos aq;  // 8 kHz
  const auto ladder = platform::build_ladder(MediaQos{aq}, 4);
  ASSERT_EQ(ladder.size(), 4u);
  const auto* a0 = std::get_if<AudioQos>(&ladder[0].media);
  for (const LadderRung& rung : ladder) {
    const auto* a = std::get_if<AudioQos>(&rung.media);
    ASSERT_NE(a, nullptr);
    // The block rate is the orchestration sync ratio: identical OSDU rate
    // on every rung, so degradation never desynchronises the session.
    EXPECT_EQ(a->blocks_per_second, a0->blocks_per_second);
    EXPECT_GE(a->sample_rate_hz, 2000);
    EXPECT_LE(a->sample_rate_hz, a0->sample_rate_hz);
  }
  EXPECT_LT(std::get_if<AudioQos>(&ladder.back().media)->sample_rate_hz, a0->sample_rate_hz);
}

TEST(BuildLadder, TextRateNeverBelowWorst) {
  TextQos tq;
  const auto base = platform::to_transport_qos(MediaQos{tq});
  const auto ladder = platform::build_ladder(MediaQos{tq}, 3);
  for (const LadderRung& rung : ladder) {
    const auto* t = std::get_if<TextQos>(&rung.media);
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->units_per_second, base.worst.osdu_rate - 1e-9);
  }
}

// ====================================================================
// LadderState hysteresis
// ====================================================================

LadderState::Config quick_cfg() {
  LadderState::Config c;
  c.degrade_after_periods = 3;
  c.upgrade_after_clean = 4;
  c.validation_ticks = 2;
  c.backoff_cap = 8;
  return c;
}

/// Drives clean ticks until the state asks for an upgrade (completing any
/// validation window on the way); returns how many ticks that took.
int ticks_until_upgrade(LadderState& s, int give_up_after = 1000) {
  for (int i = 1; i <= give_up_after; ++i) {
    if (s.on_clean_tick() == LadderState::Action::kUpgrade) return i;
  }
  return -1;
}

TEST(LadderStateUnit, DegradesOnlyAfterKConsecutivePeriods) {
  LadderState s(4, quick_cfg());
  EXPECT_EQ(s.on_violation(1), LadderState::Action::kNone);
  EXPECT_EQ(s.on_violation(2), LadderState::Action::kNone);
  EXPECT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  EXPECT_TRUE(s.in_flight());
  s.note_applied(LadderState::Action::kDegrade, true);
  EXPECT_EQ(s.level(), 1);
}

TEST(LadderStateUnit, NoActionWhileRenegotiationInFlight) {
  LadderState s(4, quick_cfg());
  ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  // Further violations while the renegotiation is pending are absorbed.
  EXPECT_EQ(s.on_violation(4), LadderState::Action::kNone);
  EXPECT_EQ(s.on_clean_tick(), LadderState::Action::kNone);
  s.note_applied(LadderState::Action::kDegrade, true);
  EXPECT_EQ(s.level(), 1);
}

TEST(LadderStateUnit, FailedRenegotiationKeepsLevel) {
  LadderState s(4, quick_cfg());
  ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  s.note_applied(LadderState::Action::kDegrade, false);
  EXPECT_EQ(s.level(), 0);
  EXPECT_FALSE(s.in_flight());
  // The next sustained run retries.
  EXPECT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
}

TEST(LadderStateUnit, NeverDegradesBelowTheFloor) {
  LadderState s(3, quick_cfg());
  for (int level = 0; level < 2; ++level) {
    ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
    s.note_applied(LadderState::Action::kDegrade, true);
  }
  ASSERT_TRUE(s.at_floor());
  EXPECT_EQ(s.on_violation(30), LadderState::Action::kNone);
  EXPECT_EQ(s.level(), 2);
}

TEST(LadderStateUnit, UpgradeProbesAfterMCleanTicksAndValidationHolds) {
  LadderState s(4, quick_cfg());
  ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  s.note_applied(LadderState::Action::kDegrade, true);

  EXPECT_EQ(ticks_until_upgrade(s), 4);  // M clean ticks, backoff 1
  s.note_applied(LadderState::Action::kUpgrade, true);
  EXPECT_EQ(s.level(), 0);
  EXPECT_TRUE(s.probing());
  // The validation window passes clean: the probe is trusted and the
  // backoff history forgiven.
  EXPECT_EQ(s.on_clean_tick(), LadderState::Action::kNone);
  EXPECT_EQ(s.on_clean_tick(), LadderState::Action::kNone);
  EXPECT_FALSE(s.probing());
  EXPECT_EQ(s.backoff(), 1);
}

TEST(LadderStateUnit, FailedProbeRollsBackAndDoublesBackoff) {
  LadderState s(4, quick_cfg());
  ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  s.note_applied(LadderState::Action::kDegrade, true);
  ASSERT_EQ(ticks_until_upgrade(s), 4);
  s.note_applied(LadderState::Action::kUpgrade, true);
  ASSERT_TRUE(s.probing());

  // A violation inside the validation window: immediate rollback (a single
  // period, not K) and doubled backoff.
  EXPECT_EQ(s.on_violation(1), LadderState::Action::kDegrade);
  s.note_applied(LadderState::Action::kDegrade, true);
  EXPECT_EQ(s.level(), 1);
  EXPECT_EQ(s.backoff(), 2);
  // The next probe needs M * backoff clean ticks.
  EXPECT_EQ(ticks_until_upgrade(s), 8);
}

TEST(LadderStateUnit, FlappingLinkProbeCadenceDecaysGeometrically) {
  // The no-oscillation property: on a link that looks clean just long
  // enough to invite a probe and then violates, successive probe intervals
  // double until the cap.  A fixed-cadence loop would flap forever at the
  // same rate.
  LadderState s(4, quick_cfg());
  ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  s.note_applied(LadderState::Action::kDegrade, true);

  std::vector<int> probe_gaps;
  for (int round = 0; round < 5; ++round) {
    const int gap = ticks_until_upgrade(s);
    ASSERT_GT(gap, 0);
    probe_gaps.push_back(gap);
    s.note_applied(LadderState::Action::kUpgrade, true);
    ASSERT_EQ(s.on_violation(1), LadderState::Action::kDegrade);  // probe fails
    s.note_applied(LadderState::Action::kDegrade, true);
  }
  EXPECT_EQ(probe_gaps, (std::vector<int>{4, 8, 16, 32, 32}));  // cap 8 * M 4
}

TEST(LadderStateUnit, ViolationResetsCleanProgress) {
  LadderState s(4, quick_cfg());
  ASSERT_EQ(s.on_violation(3), LadderState::Action::kDegrade);
  s.note_applied(LadderState::Action::kDegrade, true);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.on_clean_tick(), LadderState::Action::kNone);
  EXPECT_EQ(s.on_violation(1), LadderState::Action::kNone);  // run of 1 < K
  // The clean streak restarts from zero.
  EXPECT_EQ(ticks_until_upgrade(s), 4);
}

// ====================================================================
// QosManager closed loop over a live stream
// ====================================================================

struct ManagedWorld {
  ManagedWorld() : platform(7) {
    src = &platform.add_host("src");
    ws = &platform.add_host("ws");
    net::LinkConfig link = lan_link();
    platform.network().add_link(src->id, ws->id, link);
    platform.network().finalize_routes();

    platform::VideoQos vq;
    vq.width = 176;  // single-TPDU frames: link jitter reaches the monitor
    vq.height = 144;
    vq.compression = 60;
    vq.frames_per_second = 25;
    video_qos = vq;

    server = std::make_unique<media::StoredMediaServer>(platform, *src, "src");
    media::TrackConfig t;
    t.track_id = 1;
    t.vbr.base_bytes = vq.frame_bytes();
    t.vbr.gop = 0;
    t.vbr.wobble = 0;
    const net::NetAddress a = server->add_track(100, t);

    media::RenderConfig r;
    r.expect_track = 1;
    sink = std::make_unique<media::RenderingSink>(platform, *ws, 200, r);

    transport::ServiceClass sc;
    sc.error_control = transport::ErrorControl::kCorrectAndIndicate;
    stream = std::make_unique<platform::Stream>(platform, *src, "video");
    stream->set_buffer_osdus(8);
    stream->set_sample_period(250 * kMillisecond);
    bool connected = false;
    stream->connect(a, {ws->id, 200}, MediaQos{vq}, sc, [&](bool ok, auto) { connected = ok; });
    platform.run_until(500 * kMillisecond);
    ok = connected;
  }

  QosManager::Config manager_cfg() const {
    QosManager::Config mc;
    mc.rungs = 4;
    mc.tick_period = 250 * kMillisecond;
    mc.quiet_after = kSecond;
    mc.ladder.degrade_after_periods = 2;
    mc.ladder.upgrade_after_clean = 4;
    mc.ladder.validation_ticks = 3;
    mc.ladder.backoff_cap = 4;
    return mc;
  }

  platform::Platform platform;
  platform::Host* src = nullptr;
  platform::Host* ws = nullptr;
  platform::VideoQos video_qos;
  std::unique_ptr<media::StoredMediaServer> server;
  std::unique_ptr<media::RenderingSink> sink;
  std::unique_ptr<platform::Stream> stream;
  bool ok = false;
};

TEST(QosManagerLoop, DegradesUnderJitterAndRecoversWhenItClears) {
  ManagedWorld w;
  ASSERT_TRUE(w.ok);
  QosManager mgr(w.platform, w.manager_cfg());
  mgr.manage(*w.stream);
  EXPECT_EQ(mgr.ladder_level(*w.stream), 0);

  // 80 ms per-packet jitter violates the 40 ms preferred tolerance but not
  // the 80 ms floor: the ladder must find a survivable rung.
  auto* link = w.platform.network().link(w.src->id, w.ws->id);
  link->set_jitter(80 * kMillisecond);
  w.platform.run_until(w.platform.scheduler().now() + 8 * kSecond);
  EXPECT_GE(mgr.totals().degrades, 1);
  EXPECT_GE(mgr.ladder_level(*w.stream), 1);
  EXPECT_TRUE(w.stream->connected());
  EXPECT_EQ(mgr.totals().floor_failures, 0);

  // Jitter clears: probe-upgrade back to the preferred rung.
  link->set_jitter(0);
  w.platform.run_until(w.platform.scheduler().now() + 25 * kSecond);
  EXPECT_GE(mgr.totals().upgrades, 1);
  EXPECT_EQ(mgr.ladder_level(*w.stream), 0);
  EXPECT_TRUE(w.stream->connected());
  EXPECT_EQ(mgr.totals().floor_failures, 0);
}

TEST(QosManagerLoop, RungChangeRenegotiatesTheContract) {
  ManagedWorld w;
  ASSERT_TRUE(w.ok);
  QosManager mgr(w.platform, w.manager_cfg());
  mgr.manage(*w.stream);

  std::vector<double> rates;
  mgr.set_on_rate_changed([&](transport::VcId, double rate) { rates.push_back(rate); });
  const double rate0 = w.stream->agreed_qos().osdu_rate;

  auto* link = w.platform.network().link(w.src->id, w.ws->id);
  link->set_jitter(80 * kMillisecond);
  w.platform.run_until(w.platform.scheduler().now() + 8 * kSecond);
  ASSERT_GE(mgr.ladder_level(*w.stream), 1);
  // The agreed contract followed the ladder: every rung change renegotiated
  // a below-preferred rate (probes may briefly climb, so the sequence is
  // not monotone) and the live contract matches the last one applied.
  ASSERT_FALSE(rates.empty());
  for (const double r : rates) EXPECT_LT(r, rate0);
  EXPECT_LT(w.stream->agreed_qos().osdu_rate, rate0);
  EXPECT_NEAR(w.stream->agreed_qos().osdu_rate, rates.back(), 1e-9);
}

TEST(QosManagerLoop, FloorViolationsSurrenderTheStream) {
  ManagedWorld w;
  ASSERT_TRUE(w.ok);
  auto mc = w.manager_cfg();
  mc.floor_strikes = 6;
  QosManager mgr(w.platform, mc);
  mgr.manage(*w.stream);
  platform::Stream* surrendered = nullptr;
  mgr.set_on_floor_unachievable([&](platform::Stream& s) { surrendered = &s; });

  // 400 ms of jitter violates even the floor tolerance (80 ms): the ladder
  // walks to the floor, keeps violating, and gives the stream up.
  auto* link = w.platform.network().link(w.src->id, w.ws->id);
  link->set_jitter(400 * kMillisecond);
  w.platform.run_until(w.platform.scheduler().now() + 30 * kSecond);
  EXPECT_GE(mgr.totals().floor_failures, 1);
  EXPECT_EQ(surrendered, w.stream.get());
}

}  // namespace
}  // namespace cmtos::test
