// Unit tests for the discrete-event scheduler and skewed local clocks.

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/scheduler.h"

namespace cmtos::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, EventsMayScheduleEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.after(10, chain);
  };
  s.after(10, chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), 50);
}

TEST(Scheduler, RunUntilStopsAtHorizonAndAdvancesNow) {
  Scheduler s;
  int fired = 0;
  s.at(10, [&] { ++fired; });
  s.at(20, [&] { ++fired; });
  s.at(30, [&] { ++fired; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.run_until(100), 1u);
  EXPECT_EQ(s.now(), 100);
}

TEST(Scheduler, CancelPreventsFiring) {
  Scheduler s;
  int fired = 0;
  auto h = s.at(10, [&] { ++fired; });
  s.at(5, [&h] { h.cancel(); });
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  int fired = 0;
  auto h = s.at(10, [&] { ++fired; });
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PendingReflectsState) {
  Scheduler s;
  EventHandle none;
  EXPECT_FALSE(none.pending());
  auto h = s.at(10, [] {});
  EXPECT_TRUE(h.pending());
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, RunWithLimit) {
  Scheduler s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.at(i, [&] { ++fired; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(fired, 3);
  s.run();
  EXPECT_EQ(fired, 10);
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.at(100, [] {});
  s.run();
  int fired = 0;
  s.after(-50, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 100);
}

TEST(LocalClock, PerfectClockIsIdentity) {
  LocalClock c;
  EXPECT_EQ(c.local_time(12345), 12345);
  EXPECT_EQ(c.true_duration(1000), 1000);
}

TEST(LocalClock, OffsetShifts) {
  LocalClock c(500, 0.0);
  EXPECT_EQ(c.local_time(1000), 1500);
}

TEST(LocalClock, DriftAccumulates) {
  LocalClock c(0, 100.0);  // +100 ppm: fast clock
  // After 1 true second the local clock reads 1s + 100us.
  EXPECT_EQ(c.local_time(1 * kSecond), 1 * kSecond + 100 * kMicrosecond);
}

TEST(LocalClock, TrueDurationInvertsDrift) {
  LocalClock c(0, 200.0);
  const Duration local = 1 * kSecond;
  const Duration truth = c.true_duration(local);
  // A fast clock reaches a local second in slightly less true time.
  EXPECT_LT(truth, local);
  // local_time(truth) ~= local (within 1ns rounding).
  EXPECT_NEAR(static_cast<double>(c.local_time(truth)), static_cast<double>(local), 1.5);
}

TEST(LocalClock, AdjustOffset) {
  LocalClock c(0, 0.0);
  c.adjust_offset(-250);
  EXPECT_EQ(c.local_time(1000), 750);
}

}  // namespace
}  // namespace cmtos::sim
