// Tests for preemptive admission: importance classes, kPreempted delivery,
// reservation accounting after displacement, and the pending-connect
// cleanup that keeps a preempted Stream from hearing stale indications.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using transport::ConnectRequest;
using transport::DisconnectReason;
using transport::VcId;

/// Two source hosts funnelled through a thin shared link to the sink: one
/// full-rate VC fits, a second does not, even degraded (worst == preferred
/// in the requests below), so contention is decided purely by importance.
struct ContendedWorld {
  ContendedWorld() : platform(42) {
    s1 = &platform.add_host("s1");
    s2 = &platform.add_host("s2");
    hub = &platform.add_host("hub");
    ws = &platform.add_host("ws");
    platform.network().add_link(s1->id, hub->id, lan_link());
    platform.network().add_link(s2->id, hub->id, lan_link());
    net::LinkConfig thin = lan_link();
    thin.bandwidth_bps = 1'400'000;  // reservable 1.26 Mbit/s: one VC only
    platform.network().add_link(hub->id, ws->id, thin);
    platform.network().finalize_routes();

    u1 = std::make_unique<ScriptedUser>(s1->entity);
    u2 = std::make_unique<ScriptedUser>(s2->entity);
    w1 = std::make_unique<ScriptedUser>(ws->entity);
    w2 = std::make_unique<ScriptedUser>(ws->entity);
    s1->entity.bind(10, u1.get());
    s2->entity.bind(11, u2.get());
    ws->entity.bind(20, w1.get());
    ws->entity.bind(21, w2.get());
  }

  /// ~0.88 Mbit/s with no degradation room: admission is all-or-nothing.
  ConnectRequest rigid_request(net::NetAddress src, net::NetAddress dst,
                               std::uint8_t importance) {
    auto req = basic_request(src, dst, 25.0, 4096);
    req.qos.worst = req.qos.preferred;
    req.importance = importance;
    return req;
  }

  std::int64_t reserved_to_ws() {
    return platform.network().reserved_on(hub->id, ws->id);
  }

  platform::Platform platform;
  platform::Host* s1 = nullptr;
  platform::Host* s2 = nullptr;
  platform::Host* hub = nullptr;
  platform::Host* ws = nullptr;
  std::unique_ptr<ScriptedUser> u1, u2, w1, w2;
};

TEST(Preempt, HigherImportanceDisplacesLower) {
  ContendedWorld w;
  const VcId va =
      w.s1->entity.t_connect_request(w.rigid_request({w.s1->id, 10}, {w.ws->id, 20}, 1));
  w.platform.run_until(300 * kMillisecond);
  ASSERT_EQ(w.u1->confirms.size(), 1u);
  const auto reserved_single = w.reserved_to_ws();

  const auto preempts_before =
      obs::Registry::global()
          .counter("admission.preempt", {{"node", std::to_string(w.s1->id)}})
          .value();
  const VcId vb =
      w.s2->entity.t_connect_request(w.rigid_request({w.s2->id, 11}, {w.ws->id, 21}, 5));
  w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);

  // The important connect was admitted at full preferred QoS...
  ASSERT_EQ(w.u2->confirms.size(), 1u);
  EXPECT_NEAR(w.u2->confirms[0].second.osdu_rate, 25.0, 1e-9);
  ASSERT_NE(w.s2->entity.source(vb), nullptr);
  // ...the background VC was displaced with the dedicated reason, at both
  // endpoints...
  ASSERT_EQ(w.u1->disconnects.size(), 1u);
  EXPECT_EQ(w.u1->disconnects[0].second, DisconnectReason::kPreempted);
  EXPECT_EQ(w.s1->entity.source(va), nullptr);
  EXPECT_EQ(w.ws->entity.sink(va), nullptr);
  // ...its reservation was returned in full (the survivor's identical QoS
  // reserves the same bandwidth), and the event was counted.
  EXPECT_EQ(w.reserved_to_ws(), reserved_single);
  EXPECT_GE(obs::Registry::global()
                .counter("admission.preempt", {{"node", std::to_string(w.s1->id)}})
                .value(),
            preempts_before + 1);
}

TEST(Preempt, EqualImportanceNeverPreempts) {
  ContendedWorld w;
  const VcId va =
      w.s1->entity.t_connect_request(w.rigid_request({w.s1->id, 10}, {w.ws->id, 20}, 3));
  w.platform.run_until(300 * kMillisecond);
  ASSERT_EQ(w.u1->confirms.size(), 1u);

  w.s2->entity.t_connect_request(w.rigid_request({w.s2->id, 11}, {w.ws->id, 21}, 3));
  w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);

  // The newcomer is refused outright; the incumbent is untouched.
  EXPECT_TRUE(w.u2->confirms.empty());
  ASSERT_EQ(w.u2->disconnects.size(), 1u);
  EXPECT_EQ(w.u2->disconnects[0].second, DisconnectReason::kNoResources);
  EXPECT_NE(w.s1->entity.source(va), nullptr);
  EXPECT_TRUE(w.u1->disconnects.empty());
}

TEST(Preempt, LowerImportanceCannotDisplaceHigher) {
  ContendedWorld w;
  const VcId va =
      w.s1->entity.t_connect_request(w.rigid_request({w.s1->id, 10}, {w.ws->id, 20}, 5));
  w.platform.run_until(300 * kMillisecond);
  ASSERT_EQ(w.u1->confirms.size(), 1u);

  w.s2->entity.t_connect_request(w.rigid_request({w.s2->id, 11}, {w.ws->id, 21}, 0));
  w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);

  ASSERT_EQ(w.u2->disconnects.size(), 1u);
  EXPECT_EQ(w.u2->disconnects[0].second, DisconnectReason::kNoResources);
  EXPECT_NE(w.s1->entity.source(va), nullptr);
}

TEST(Preempt, VictimIsTheLeastImportantOnTheContendedPath) {
  // Three-way: importance 0 and 2 share the thin link (each at a rate the
  // pair fits); an importance-5 arrival that displaces exactly one stream
  // must pick the importance-0 one.
  ContendedWorld w;
  auto small = [&](net::NetAddress src, net::NetAddress dst, std::uint8_t importance) {
    auto req = basic_request(src, dst, 12.0, 4096);  // ~0.42 Mbit/s + control
    req.qos.worst = req.qos.preferred;
    req.importance = importance;
    return req;
  };
  const VcId va = w.s1->entity.t_connect_request(small({w.s1->id, 10}, {w.ws->id, 20}, 0));
  const VcId vb = w.s2->entity.t_connect_request(small({w.s2->id, 11}, {w.ws->id, 21}, 2));
  w.platform.run_until(300 * kMillisecond);
  ASSERT_EQ(w.u1->confirms.size(), 1u);
  ASSERT_EQ(w.u2->confirms.size(), 1u);

  ScriptedUser u3(w.s1->entity);
  ScriptedUser w3(w.ws->entity);
  w.s1->entity.bind(12, &u3);
  w.ws->entity.bind(22, &w3);
  w.s1->entity.t_connect_request(small({w.s1->id, 12}, {w.ws->id, 22}, 5));
  w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);

  ASSERT_EQ(u3.confirms.size(), 1u);
  EXPECT_EQ(w.s1->entity.source(va), nullptr);  // importance 0: displaced
  EXPECT_NE(w.s2->entity.source(vb), nullptr);  // importance 2: survives
  ASSERT_EQ(w.u1->disconnects.size(), 1u);
  EXPECT_EQ(w.u1->disconnects[0].second, DisconnectReason::kPreempted);
}

// --- managed-stream indication hygiene (regression) ---
//
// A Stream is a distinct initiator co-located with the source entity; its
// connect runs the remote-connect loop-back path, which leaves an RCR
// retransmit timer pending until the initiator is notified.  That timer
// must die with the notification: a replay landing after the VC was
// preempted used to re-run admission on the now-full link and deliver a
// stale kNoResources on top of the kPreempted the Stream already handled.

TEST(Preempt, PreemptedStreamHearsExactlyOnePreemptIndication) {
  platform::Platform platform(42);
  auto& s1 = platform.add_host("s1");
  auto& hub = platform.add_host("hub");
  auto& ws = platform.add_host("ws");
  platform.network().add_link(s1.id, hub.id, lan_link());
  net::LinkConfig thin = lan_link();
  thin.bandwidth_bps = 1'666'667;  // one default video stream, not two
  platform.network().add_link(hub.id, ws.id, thin);
  platform.network().finalize_routes();

  ScriptedUser dev_a(s1.entity), dev_c(s1.entity);
  ScriptedUser sink_a(ws.entity), sink_c(ws.entity);
  s1.entity.bind(100, &dev_a);
  s1.entity.bind(102, &dev_c);
  ws.entity.bind(200, &sink_a);
  ws.entity.bind(202, &sink_c);

  platform::VideoQos vq;
  vq.frames_per_second = 25;

  platform::Stream a(platform, s1, "background");
  platform::Stream c(platform, s1, "critical");
  a.set_importance(0);
  c.set_importance(5);

  std::vector<DisconnectReason> a_reasons;
  a.set_on_disconnected([&](DisconnectReason r) { a_reasons.push_back(r); });

  bool a_ok = false;
  a.connect({s1.id, 100}, {ws.id, 200}, platform::MediaQos{vq}, {},
            [&](bool ok, auto) { a_ok = ok; });
  platform.run_until(500 * kMillisecond);
  ASSERT_TRUE(a_ok);

  bool c_ok = false;
  c.connect({s1.id, 102}, {ws.id, 202}, platform::MediaQos{vq}, {},
            [&](bool ok, auto) { c_ok = ok; });
  // Run well past the RCR retransmit window: a leaked retransmit would
  // replay the connect and surface a second, spurious indication.
  platform.run_until(platform.scheduler().now() + 4 * kSecond);

  EXPECT_TRUE(c_ok);
  EXPECT_TRUE(c.connected());
  ASSERT_EQ(a_reasons.size(), 1u);
  EXPECT_EQ(a_reasons[0], DisconnectReason::kPreempted);
  EXPECT_FALSE(a.connected());
}

// --- victim-search cost (scale regression) ---
//
// The importance-ordered preemption index must keep the victim scan
// proportional to the candidate classes below the requester, not to the
// total reservation population: at city scale the network holds thousands
// of unpreemptible (or high-class) reservations that a linear sweep would
// visit on every contended admission.

TEST(Preempt, VictimScanLengthIndependentOfReservationPopulation) {
  sim::Scheduler sched;
  net::Network net{sched, Rng(1)};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net::LinkConfig cfg = lan_link();
  cfg.bandwidth_bps = 120'000'000;
  net.add_link(a, b, cfg);
  net.finalize_routes();

  // Fill the link with 1000 high-class annotated reservations plus two
  // low-class victims.  A full scan would visit ~1002 entries; the indexed
  // scan must visit only the two class-0 candidates.
  int preempted = 0;
  std::vector<net::ReservationId> victims;
  for (int i = 0; i < 2; ++i) {
    auto r = net.reserve(a, b, 100'000);
    ASSERT_TRUE(r.has_value());
    victims.push_back(*r);
    net.annotate_reservation(*r, 0, [&net, &preempted, id = *r] {
      ++preempted;
      net.release(id);
    });
  }
  std::int64_t bulk_total = 0;
  while (true) {
    auto r = net.reserve(a, b, 100'000);
    if (!r.has_value()) break;
    net.annotate_reservation(*r, 7, [] {});
    bulk_total += 100'000;
  }
  ASSERT_GT(bulk_total, 90'000'000);  // the link really is crowded

  // Class-5 admission for 60 kbit/s: one class-0 victim frees enough.
  EXPECT_TRUE(net.preempt_for(a, b, 60'000, 5));
  EXPECT_EQ(preempted, 1);
  const double scan =
      obs::Registry::global().gauge("admission.victim_scan_len").value();
  EXPECT_GE(scan, 1.0);
  EXPECT_LE(scan, 8.0) << "victim scan visited O(population) entries";

  // An admission that cannot be satisfied still only scans the lower
  // classes (here: the one remaining class-0 victim, swept or visited).
  EXPECT_FALSE(net.preempt_for(a, b, 60'000'000, 5));
  EXPECT_LE(obs::Registry::global().gauge("admission.victim_scan_len").value(),
            8.0);
}

}  // namespace
}  // namespace cmtos::test
