// Unit tests for cmtos/util: time, rng, checksum, stats, ring buffer,
// byte_io.

#include <gtest/gtest.h>

#include "util/byte_io.h"
#include "util/checksum.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace cmtos {
namespace {

TEST(Time, TransmissionTimeRoundsUp) {
  // 1000 bytes at 8 Mbit/s = exactly 1 ms.
  EXPECT_EQ(transmission_time(1000, 8'000'000), 1 * kMillisecond);
  // 1 byte at 1 Gbit/s = 8 ns.
  EXPECT_EQ(transmission_time(1, 1'000'000'000), 8);
  // Non-dividing case rounds up, never down.
  EXPECT_EQ(transmission_time(1, 3), (8 * kSecond + 2) / 3);
  EXPECT_EQ(transmission_time(100, 0), 0);
}

TEST(Time, FormatTime) {
  EXPECT_EQ(format_time(1500 * kMicrosecond), "1.500ms");
  EXPECT_EQ(format_time(2 * kSecond), "2.000s");
  EXPECT_EQ(format_time(750), "750ns");
  EXPECT_EQ(format_time(-1500 * kMicrosecond), "-1.500ms");
}

TEST(Time, SecondsConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(1500 * kMillisecond), 1.5);
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_millis(20 * kMillisecond), 20.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(17);
  double acc = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) acc += r.exponential(5.0);
  EXPECT_NEAR(acc / kTrials, 5.0, 0.25);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child stream should not be a shifted copy of the parent's.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Checksum, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const std::string s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}), 0xCBF43926u);
}

TEST(Checksum, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(128);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const auto good = crc32(data);
  data[40] ^= 0x10;
  EXPECT_NE(crc32(data), good);
}

TEST(Checksum, EmptyInput) { EXPECT_EQ(crc32({}), 0u); }

TEST(OnlineStats, MeanVarMinMax) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(42);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(RateMeter, RatesOverWindow) {
  RateMeter m;
  m.begin_window(0);
  for (int i = 0; i < 25; ++i) m.record(1000);
  EXPECT_DOUBLE_EQ(m.event_rate(1 * kSecond), 25.0);
  EXPECT_DOUBLE_EQ(m.bit_rate(1 * kSecond), 25.0 * 8000);
  EXPECT_EQ(m.event_rate(0), 0.0);  // zero-length window
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0, 10, 10);
  h.add(-1);
  h.add(0);
  h.add(5.5);
  h.add(9.999);
  h.add(10);
  h.add(100);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(5), 1);
  EXPECT_EQ(h.bucket(9), 1);
  EXPECT_EQ(h.total(), 6);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  rb.push(5);
  rb.push(6);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
  EXPECT_EQ(rb.pop(), 6);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, PopNewestDropsLifo) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.pop_newest(), 3);  // drop-at-source semantics
  EXPECT_EQ(rb.pop_newest(), 2);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAroundStress) {
  RingBuffer<int> rb(3);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (!rb.full()) rb.push(next_in++);
    while (!rb.empty()) EXPECT_EQ(rb.pop(), next_out++);
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(ByteIo, RoundTripsAllTypes) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.blob(std::vector<std::uint8_t>{1, 2, 3});

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(ByteIo, UnderrunThrows) {
  std::vector<std::uint8_t> buf{1, 2};
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(ByteIo, LittleEndianOnWire) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u32(0x11223344);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x44);
  EXPECT_EQ(buf[3], 0x11);
}

}  // namespace
}  // namespace cmtos
