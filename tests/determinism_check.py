#!/usr/bin/env python3
"""Sharded-runtime determinism regression check (DESIGN.md section 10).

Runs the chaos, overload, byzantine and city soaks at --threads 1/2/8 with
the same seed and asserts that the fault log (stdout+stderr) and the metric
snapshot (--json) are byte-identical across thread counts.  --threads 1 is the determinism
oracle: the executor classifies and orders rounds identically at every
worker count, so any divergence here is a cross-shard ordering bug, not
noise.

Usage: determinism_check.py <chaos_soak-binary> <overload_soak-binary> \\
                            <byzantine_soak-binary> <city_soak-binary>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

THREADS = [1, 2, 8]

RUNS = [
    ("chaos_soak", ["--scenario", "crash_mid_stream", "--seed", "5"]),
    ("chaos_soak", ["--scenario", "partition_prime_start", "--seed", "5"]),
    ("chaos_soak", ["--scenario", "orch_death", "--seed", "5"]),
    ("chaos_soak", ["--scenario", "partition_heal_split_brain", "--seed", "5"]),
    ("chaos_soak", ["--scenario", "orch_flap", "--seed", "5"]),
    ("overload_soak", ["--scenario", "storm_recover", "--seed", "7"]),
    ("overload_soak", ["--scenario", "preempt", "--seed", "7"]),
    ("overload_soak", ["--scenario", "consumer_stall", "--seed", "7"]),
    ("byzantine_soak", ["--scenario", "byzantine_storm", "--seed", "5"]),
    ("byzantine_soak", ["--scenario", "dup_flood", "--seed", "5"]),
    ("city_soak", ["--scenario", "churn", "--seed", "3"]),
    ("city_soak", ["--scenario", "steady", "--seed", "7"]),
]


def run_one(binary, scenario_args, threads, json_path):
    cmd = [binary, *scenario_args, "--threads", str(threads), "--json", str(json_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(cmd)} exited {proc.returncode}\n{proc.stdout}{proc.stderr}"
        )
    return proc.stdout + proc.stderr, json_path.read_bytes()


def main():
    if len(sys.argv) != 5:
        raise SystemExit(__doc__)
    binaries = {
        "chaos_soak": sys.argv[1],
        "overload_soak": sys.argv[2],
        "byzantine_soak": sys.argv[3],
        "city_soak": sys.argv[4],
    }
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        for name, scenario_args in RUNS:
            label = f"{name} {' '.join(scenario_args)}"
            ref_log = ref_json = None
            for t in THREADS:
                log, snap = run_one(
                    binaries[name], scenario_args, t, tmp / f"{name}-{t}.json"
                )
                json.loads(snap)  # the snapshot must at least be valid JSON
                if t == THREADS[0]:
                    ref_log, ref_json = log, snap
                    continue
                if log != ref_log:
                    print(f"FAIL: {label}: fault log differs at --threads {t}")
                    failures += 1
                if snap != ref_json:
                    print(f"FAIL: {label}: metric snapshot differs at --threads {t}")
                    failures += 1
            print(f"ok: {label}: byte-identical at threads {THREADS}")
    if failures:
        raise SystemExit(f"{failures} determinism failure(s)")
    print("determinism check passed")


if __name__ == "__main__":
    main()
