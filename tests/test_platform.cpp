// Platform tests: REX-like delay-bounded invocation, the trader, media-QoS
// mapping, and the Stream ADT (connect / disconnect / media-terms QoS
// change, §2.2).

#include <gtest/gtest.h>

#include "fixtures.h"
#include "util/byte_io.h"

namespace cmtos::test {
namespace {

using platform::AudioQos;
using platform::InterfaceRef;
using platform::RpcOutcome;
using platform::TextQos;
using platform::VideoQos;

TEST(Rpc, InvokeRoundTrip) {
  PairPlatform w;
  w.b->rpc.register_op("calc", "double",
                       [](std::span<const std::uint8_t> req)
                           -> std::optional<std::vector<std::uint8_t>> {
                         ByteReader r(req);
                         const std::int64_t x = r.i64();
                         std::vector<std::uint8_t> out;
                         ByteWriter wtr(out);
                         wtr.i64(2 * x);
                         return out;
                       });
  std::vector<std::uint8_t> args;
  ByteWriter wr(args);
  wr.i64(21);
  std::optional<std::int64_t> result;
  w.a->rpc.invoke(w.b->id, "calc", "double", args,
                  [&](RpcOutcome o, std::span<const std::uint8_t> reply) {
                    ASSERT_EQ(o, RpcOutcome::kOk);
                    ByteReader r(reply);
                    result = r.i64();
                  });
  w.platform.run_until(kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 42);
}

TEST(Rpc, NoSuchInterfaceAndOperation) {
  PairPlatform w;
  w.b->rpc.register_op("ifc", "op", [](auto) { return std::vector<std::uint8_t>{}; });
  RpcOutcome o1 = RpcOutcome::kOk, o2 = RpcOutcome::kOk;
  w.a->rpc.invoke(w.b->id, "nope", "op", {}, [&](RpcOutcome o, auto) { o1 = o; });
  w.a->rpc.invoke(w.b->id, "ifc", "nope", {}, [&](RpcOutcome o, auto) { o2 = o; });
  w.platform.run_until(kSecond);
  EXPECT_EQ(o1, RpcOutcome::kNoSuchInterface);
  EXPECT_EQ(o2, RpcOutcome::kNoSuchOperation);
}

TEST(Rpc, AppErrorPropagates) {
  PairPlatform w;
  w.b->rpc.register_op("ifc", "fail", [](auto) { return std::nullopt; });
  RpcOutcome got = RpcOutcome::kOk;
  w.a->rpc.invoke(w.b->id, "ifc", "fail", {}, [&](RpcOutcome o, auto) { got = o; });
  w.platform.run_until(kSecond);
  EXPECT_EQ(got, RpcOutcome::kAppError);
}

TEST(Rpc, DelayBoundTimesOutAndDropsLateReply) {
  // §2.2: invocation "extended to provide the delay bounded communication
  // required for the real-time control of multimedia applications".
  net::LinkConfig slow = lan_link();
  slow.propagation_delay = 50 * kMillisecond;
  PairPlatform w(slow);
  w.b->rpc.register_op("ifc", "op", [](auto) { return std::vector<std::uint8_t>{1}; });
  int calls = 0;
  RpcOutcome got = RpcOutcome::kOk;
  // RTT is ~100ms; bound of 20ms must fail fast.
  w.a->rpc.invoke(w.b->id, "ifc", "op", {}, 20 * kMillisecond, [&](RpcOutcome o, auto) {
    ++calls;
    got = o;
  });
  w.platform.run_until(kSecond);
  EXPECT_EQ(calls, 1);  // late reply does not fire the callback again
  EXPECT_EQ(got, RpcOutcome::kTimeout);
}

TEST(Rpc, GenerousDelayBoundSucceeds) {
  PairPlatform w;
  w.b->rpc.register_op("ifc", "op", [](auto) { return std::vector<std::uint8_t>{1}; });
  RpcOutcome got = RpcOutcome::kTimeout;
  w.a->rpc.invoke(w.b->id, "ifc", "op", {}, 500 * kMillisecond,
                  [&](RpcOutcome o, auto) { got = o; });
  w.platform.run_until(kSecond);
  EXPECT_EQ(got, RpcOutcome::kOk);
}

TEST(Trader, ExportImportWithdraw) {
  StarPlatform star(3);
  auto& p = star.platform;
  p.start_trader(star.hub->id);

  auto client0 = p.trader_client(star.leaves[0]->id);
  auto client1 = p.trader_client(star.leaves[1]->id);

  bool exported = false;
  client0.export_interface({"camera1", star.leaves[0]->id, 42}, [&](bool ok) { exported = ok; });
  p.run_until(kSecond);
  ASSERT_TRUE(exported);

  std::optional<InterfaceRef> found;
  client1.import_interface("camera1", [&](std::optional<InterfaceRef> r) { found = r; });
  p.run_until(2 * kSecond);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->node, star.leaves[0]->id);
  EXPECT_EQ(found->tsap, 42);

  bool withdrawn = false;
  client0.withdraw("camera1", [&](bool ok) { withdrawn = ok; });
  p.run_until(3 * kSecond);
  ASSERT_TRUE(withdrawn);
  bool looked_up = false;
  std::optional<InterfaceRef> gone;
  client1.import_interface("camera1", [&](std::optional<InterfaceRef> r) {
    looked_up = true;
    gone = r;
  });
  p.run_until(4 * kSecond);
  EXPECT_TRUE(looked_up);
  EXPECT_FALSE(gone.has_value());
}

TEST(Trader, ImportUnknownNameFails) {
  StarPlatform star(2);
  star.platform.start_trader(star.hub->id);
  auto client = star.platform.trader_client(star.leaves[0]->id);
  bool called = false;
  std::optional<InterfaceRef> r;
  client.import_interface("ghost", [&](std::optional<InterfaceRef> ref) {
    called = true;
    r = ref;
  });
  star.platform.run_until(kSecond);
  EXPECT_TRUE(called);
  EXPECT_FALSE(r.has_value());
}

TEST(MediaQos, VideoMapping) {
  VideoQos v;
  v.width = 352;
  v.height = 288;
  v.frames_per_second = 25;
  v.colour = true;
  v.compression = 50;
  const auto tol = platform::to_transport_qos(v);
  EXPECT_DOUBLE_EQ(tol.preferred.osdu_rate, 25.0);
  EXPECT_EQ(tol.preferred.max_osdu_bytes, v.frame_bytes());
  EXPECT_GT(tol.worst.packet_error_rate, tol.preferred.packet_error_rate - 1e-12);
  // Colour doubles-ish the size vs monochrome at equal compression.
  VideoQos mono = v;
  mono.colour = false;
  EXPECT_GT(v.frame_bytes(), 2 * mono.frame_bytes());
  // Interactive video gets a tighter delay budget.
  VideoQos inter = v;
  inter.interactive = true;
  EXPECT_LT(platform::to_transport_qos(inter).preferred.end_to_end_delay,
            tol.preferred.end_to_end_delay);
}

TEST(MediaQos, AudioMapping) {
  AudioQos a;
  a.sample_rate_hz = 8000;
  a.bits_per_sample = 8;
  a.channels = 1;
  a.blocks_per_second = 50;
  const auto tol = platform::to_transport_qos(a);
  EXPECT_DOUBLE_EQ(tol.preferred.osdu_rate, 50.0);
  EXPECT_EQ(tol.preferred.max_osdu_bytes, 160);  // 8000/50 samples * 1 B
  // Audio jitter bound is tight (§3.2).
  EXPECT_LE(tol.preferred.delay_jitter, 10 * kMillisecond);
  // CD quality demands more bandwidth.
  AudioQos cd = a;
  cd.sample_rate_hz = 44100;
  cd.bits_per_sample = 16;
  cd.channels = 2;
  EXPECT_GT(platform::to_transport_qos(cd).preferred.required_bps(),
            tol.preferred.required_bps() * 10);
}

TEST(MediaQos, TextRequiresNoLoss) {
  TextQos t;
  const auto tol = platform::to_transport_qos(t);
  EXPECT_DOUBLE_EQ(tol.preferred.packet_error_rate, 0.0);
}

TEST(Stream, ConnectReportsAgreedQos) {
  PairPlatform w;
  media::StoredMediaServer server(w.platform, *w.a, "s");
  media::TrackConfig t;
  t.track_id = 1;
  const auto src = server.add_track(100, t);
  media::RenderingSink sink(w.platform, *w.b, 200, {});

  platform::Stream stream(w.platform, *w.b, "video");
  bool ok = false;
  transport::QosParams agreed;
  VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {w.b->id, 200}, vq, {}, [&](bool o, transport::QosParams q) {
    ok = o;
    agreed = q;
  });
  w.platform.run_until(kSecond);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(stream.connected());
  EXPECT_NEAR(agreed.osdu_rate, 25.0, 1e-9);
  const auto spec = stream.orch_spec(2);
  EXPECT_EQ(spec.vc.src_node, w.a->id);
  EXPECT_EQ(spec.vc.sink_node, w.b->id);
  EXPECT_EQ(spec.max_drop_per_interval, 2u);
}

TEST(Stream, ConnectFailureReported) {
  PairPlatform w;
  // No device bound at the source TSAP.
  platform::Stream stream(w.platform, *w.b, "video");
  bool called = false, ok = true;
  stream.connect({w.a->id, 777}, {w.b->id, 200}, VideoQos{}, {}, [&](bool o, auto) {
    called = true;
    ok = o;
  });
  w.platform.run_until(kSecond);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(stream.connected());
}

TEST(Stream, ChangeQosInMediaTerms) {
  PairPlatform w;
  media::StoredMediaServer server(w.platform, *w.a, "s");
  media::TrackConfig t;
  t.track_id = 1;
  const auto src = server.add_track(100, t);
  media::RenderingSink sink(w.platform, *w.b, 200, {});
  platform::Stream stream(w.platform, *w.b, "video");
  VideoQos vq;
  vq.frames_per_second = 12.5;
  vq.colour = false;
  stream.connect(src, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(kSecond);
  ASSERT_TRUE(stream.connected());
  const double rate_before = stream.agreed_qos().osdu_rate;

  // "Upgrading from monochrome to colour video" (§3.3).
  VideoQos colour = vq;
  colour.colour = true;
  colour.frames_per_second = 25;
  bool changed = false;
  transport::QosParams after;
  stream.change_qos(colour, [&](bool ok, transport::QosParams q) {
    changed = ok;
    after = q;
  });
  w.platform.run_until(3 * kSecond);
  ASSERT_TRUE(changed);
  EXPECT_GT(after.osdu_rate, rate_before);
  EXPECT_NEAR(after.osdu_rate, 25.0, 1e-6);
}

TEST(Stream, DisconnectTearsDownRemotely) {
  PairPlatform w;
  media::StoredMediaServer server(w.platform, *w.a, "s");
  media::TrackConfig t;
  t.track_id = 1;
  const auto src = server.add_track(100, t);
  media::RenderingSink sink(w.platform, *w.b, 200, {});
  platform::Stream stream(w.platform, *w.b, "video");
  stream.connect(src, {w.b->id, 200}, VideoQos{}, {}, nullptr);
  w.platform.run_until(kSecond);
  ASSERT_TRUE(stream.connected());
  const auto vc = stream.vc();

  stream.disconnect();
  w.platform.run_until(3 * kSecond);
  // The source device honoured the remote release.
  EXPECT_EQ(w.a->entity.source(vc), nullptr);
  EXPECT_EQ(w.b->entity.sink(vc), nullptr);
}

TEST(Stream, QosDegradationCallbackFires) {
  net::LinkConfig link = lan_link();
  PairPlatform w(link);
  media::StoredMediaServer server(w.platform, *w.a, "s");
  media::TrackConfig t;
  t.track_id = 1;
  t.vbr.base_bytes = 2048;
  const auto src = server.add_track(100, t);
  media::RenderingSink sink(w.platform, *w.b, 200, {});
  platform::Stream stream(w.platform, *w.b, "video");
  int degradations = 0;
  stream.set_on_qos_degraded([&](const transport::QosReport&) { ++degradations; });
  VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(2 * kSecond);
  ASSERT_TRUE(stream.connected());

  w.platform.network().link(w.a->id, w.b->id)->set_loss_rate(0.5);
  w.platform.run_until(8 * kSecond);
  EXPECT_GT(degradations, 0);
}

}  // namespace
}  // namespace cmtos::test
