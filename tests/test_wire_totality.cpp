// cmtos/tests/test_wire_totality.cpp
//
// Decoder totality sweep (DESIGN.md §14): every PDU family's decoder is fed
// every proper prefix of a valid encoding, [0, wire_size).  Each one must
// return nullopt with a classified fault — never crash, never over-read
// (ASan/UBSan builds enforce the latter).  A CRC-trailing encoding can
// never survive truncation: either the trailer is gone (kChecksum /
// kTruncated) or what remains fails a structural check.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "orch/opdu.h"
#include "transport/tpdu.h"
#include "util/frame_pool.h"

namespace cmtos {
namespace {

using orch::Opdu;
using orch::OpduType;
using transport::AckTpdu;
using transport::ControlTpdu;
using transport::DataTpdu;
using transport::DatagramTpdu;
using transport::FeedbackTpdu;
using transport::KeepaliveTpdu;
using transport::NakTpdu;
using transport::TpduType;

template <typename Pdu>
void sweep(const std::vector<std::uint8_t>& wire, const char* family) {
  ASSERT_TRUE(Pdu::decode(wire).has_value()) << family << ": seed encoding must decode";
  for (std::size_t len = 0; len < wire.size(); ++len) {
    WireFault fault = WireFault::kNone;
    const std::span<const std::uint8_t> prefix(wire.data(), len);
    const auto got = Pdu::decode(prefix, &fault);
    EXPECT_FALSE(got.has_value()) << family << ": prefix of length " << len << " accepted";
    EXPECT_NE(fault, WireFault::kNone)
        << family << ": refusal at length " << len << " left fault unclassified";
  }
}

TEST(WireTotality, ControlTpduEveryType) {
  for (int type = 1; type <= 10; ++type) {
    ControlTpdu t;
    t.type = static_cast<TpduType>(type);
    t.vc = 7;
    t.src = {1, 10};
    t.dst = {2, 20};
    t.buffer_osdus = 16;
    sweep<ControlTpdu>(t.encode(), "control_tpdu");
  }
}

TEST(WireTotality, DataTpdu) {
  DataTpdu t;
  t.vc = 3;
  t.tpdu_seq = 41;
  t.osdu_seq = 9;
  t.frag_index = 1;
  t.frag_count = 2;
  t.payload = PayloadView::adopt({1, 2, 3, 4, 5, 6, 7, 8});
  sweep<DataTpdu>(t.encode(), "data_tpdu");
}

TEST(WireTotality, DataTpduEmptyPayload) {
  DataTpdu t;
  t.vc = 3;
  sweep<DataTpdu>(t.encode(), "data_tpdu");
}

TEST(WireTotality, AckTpdu) {
  AckTpdu t;
  t.vc = 5;
  t.cumulative_ack = 100;
  t.window = 32;
  sweep<AckTpdu>(t.encode(), "ack_tpdu");
}

TEST(WireTotality, NakTpdu) {
  NakTpdu t;
  t.vc = 5;
  t.missing = {3, 4, 9};
  sweep<NakTpdu>(t.encode(), "nak_tpdu");
}

TEST(WireTotality, FeedbackTpdu) {
  FeedbackTpdu t;
  t.vc = 5;
  t.free_slots = 3;
  t.capacity = 32;
  t.highest_osdu = 88;
  sweep<FeedbackTpdu>(t.encode(), "fb_tpdu");
}

TEST(WireTotality, KeepaliveTpdu) {
  KeepaliveTpdu t;
  t.vc = 9;
  sweep<KeepaliveTpdu>(t.encode(), "ka_tpdu");
}

TEST(WireTotality, DatagramTpdu) {
  DatagramTpdu t;
  t.src = {1, 10};
  t.dst_tsap = 20;
  t.payload = {9, 8, 7};
  sweep<DatagramTpdu>(t.encode(), "dg_tpdu");
}

TEST(WireTotality, OpduEveryType) {
  static constexpr OpduType kTypes[] = {
      OpduType::kSessReq, OpduType::kSessAck, OpduType::kSessRel, OpduType::kPrime,
      OpduType::kPrimeAck, OpduType::kPrimed, OpduType::kStart, OpduType::kStartAck,
      OpduType::kStop, OpduType::kStopAck, OpduType::kAdd, OpduType::kAddAck,
      OpduType::kRemove, OpduType::kRemoveAck, OpduType::kRegulateSink,
      OpduType::kRegulateSrc, OpduType::kDrop, OpduType::kRegInd, OpduType::kSrcStats,
      OpduType::kEventReg, OpduType::kEventInd, OpduType::kDelayed, OpduType::kDelayedAck,
      OpduType::kVcDead, OpduType::kTimeReq, OpduType::kTimeResp, OpduType::kEpochNack};
  for (const auto type : kTypes) {
    Opdu o;
    o.type = type;
    o.session = 0x1122334455667788ull;
    o.vc = 12;
    o.orch_node = 1;
    o.vcs = {{12, 1, 2}};
    sweep<Opdu>(o.encode(), "opdu");
  }
}

// The split packet path: a truncated header must refuse at every length.
TEST(WireTotality, DataTpduPacketHeaderPrefixes) {
  DataTpdu t;
  t.vc = 3;
  t.tpdu_seq = 41;
  t.payload = PayloadView::adopt({1, 2, 3, 4});
  net::Packet pkt;
  t.encode_onto(pkt);
  ASSERT_TRUE(DataTpdu::decode_packet(pkt).has_value());
  const auto full = pkt.payload;
  for (std::size_t len = 0; len < full.size(); ++len) {
    net::Packet cut = pkt;
    cut.payload.assign(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    WireFault fault = WireFault::kNone;
    EXPECT_FALSE(DataTpdu::decode_packet(cut, &fault).has_value())
        << "header prefix of length " << len << " accepted";
    EXPECT_NE(fault, WireFault::kNone);
  }
}

}  // namespace
}  // namespace cmtos
