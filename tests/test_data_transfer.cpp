// Data-plane tests: OSDU boundary preservation, segmentation/reassembly,
// rate-based flow control, the window-based baseline, error-control
// classes, drop-at-source and delivery gating.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using transport::Connection;
using transport::ErrorControl;
using transport::Osdu;
using transport::ProtocolProfile;
using transport::VcId;

/// Opens a VC between two bound ScriptedUsers and returns (source, sink).
struct Wire {
  Wire(PairPlatform& w, transport::ConnectRequest req)
      : src_user(w.a->entity), dst_user(w.b->entity) {
    w.a->entity.bind(req.src.tsap, &src_user);
    w.b->entity.bind(req.dst.tsap, &dst_user);
    vc = w.a->entity.t_connect_request(req);
    w.platform.run_until(200 * kMillisecond);
    source = w.a->entity.source(vc);
    sink = w.b->entity.sink(vc);
  }
  ScriptedUser src_user, dst_user;
  VcId vc = transport::kInvalidVc;
  Connection* source = nullptr;
  Connection* sink = nullptr;
};

std::vector<std::uint8_t> payload(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

/// Drains every deliverable OSDU from the sink.
std::vector<Osdu> drain(Connection& sink) {
  std::vector<Osdu> out;
  while (auto o = sink.receive()) out.push_back(std::move(*o));
  return out;
}

TEST(DataTransfer, SmallOsdusArriveInOrderWithBoundaries) {
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024));
  ASSERT_NE(wire.source, nullptr);
  ASSERT_NE(wire.sink, nullptr);

  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(wire.source->submit(payload(100 + static_cast<std::size_t>(i), 7)));
  w.platform.run_until(2 * kSecond);

  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, i);
    EXPECT_EQ(got[i].data.size(), 100 + i);  // boundary preserved exactly
    EXPECT_EQ(got[i].data[0], 7);
  }
}

TEST(DataTransfer, LargeOsduIsFragmentedAndReassembled) {
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 10.0, 64 * 1024));
  ASSERT_NE(wire.source, nullptr);

  // 10,000 bytes: 8 fragments at 1400 B MTU payload.
  std::vector<std::uint8_t> big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
  auto copy = big;
  ASSERT_TRUE(wire.source->submit(std::move(copy)));
  w.platform.run_until(2 * kSecond);

  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].data, big);  // byte-exact across fragmentation
  EXPECT_GE(wire.source->stats().tpdus_sent, 8);
}

TEST(DataTransfer, EmptyOsduIsLegal) {
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 10.0, 1024));
  ASSERT_TRUE(wire.source->submit(std::vector<std::uint8_t>{}));
  ASSERT_TRUE(wire.source->submit(payload(5, 9)));
  w.platform.run_until(kSecond);
  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].data.empty());
  EXPECT_EQ(got[1].data.size(), 5u);
}

TEST(DataTransfer, EventFieldRidesWithOsdu) {
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 10.0, 1024));
  ASSERT_TRUE(wire.source->submit(payload(10, 1), 0xc0ffee));
  w.platform.run_until(kSecond);
  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].event, 0xc0ffeeu);
}

TEST(DataTransfer, RatePacingSpreadsTransmissions) {
  // At 10 OSDU/s the source must not burst everything instantly.
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 10.0, 1024));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(wire.source->submit(payload(1000, 1)));
  w.platform.run_until(150 * kMillisecond);
  // ~10/s * 0.15s => only 1-3 delivered so far, not all 8.
  EXPECT_LE(wire.sink->stats().osdus_completed, 4);
  w.platform.run_until(2 * kSecond);
  EXPECT_EQ(wire.sink->stats().osdus_completed, 8);
}

TEST(DataTransfer, SlowConsumerBackpressuresProducer) {
  auto req = basic_request({0, 1}, {1, 2}, 200.0, 1024);
  req.buffer_osdus = 4;
  PairPlatform w;
  req.src.node = w.a->id;
  req.dst.node = w.b->id;
  Wire wire(w, req);

  // Producer floods continuously; consumer never reads.  The pipeline
  // (send ring + in-flight + receive ring) is finite, so acceptance must
  // saturate well below the offered load.
  int accepted = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) accepted += wire.source->submit(payload(500, 2));
    w.platform.run_until(w.platform.scheduler().now() + 50 * kMillisecond);
  }
  EXPECT_LT(accepted, 200);  // 1000 offered; backpressure bit hard
  // After saturation, submissions are refused outright.
  w.platform.run_until(w.platform.scheduler().now() + kSecond);
  int accepted_late = 0;
  for (int i = 0; i < 10; ++i) accepted_late += wire.source->submit(payload(500, 2));
  EXPECT_EQ(accepted_late, 0);
  // Nothing was lost: everything accepted is buffered or delivered, and
  // the consumer can still read it all out.
  EXPECT_EQ(wire.sink->stats().tpdus_lost, 0);
  int drained = 0;
  for (int round = 0; round < 80; ++round) {
    drained += static_cast<int>(drain(*wire.sink).size());
    w.platform.run_until(w.platform.scheduler().now() + 100 * kMillisecond);
  }
  EXPECT_EQ(drained, accepted);
}

TEST(DataTransfer, PauseSourceFreezesFlow) {
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024));
  for (int i = 0; i < 50; ++i) (void)wire.source->submit(payload(100, 3));
  w.platform.run_until(100 * kMillisecond);
  wire.source->pause_source(true);
  const auto frozen_at = wire.sink->stats().osdus_completed;
  w.platform.run_until(kSecond);
  // At most one in-flight TPDU lands after the freeze.
  EXPECT_LE(wire.sink->stats().osdus_completed, frozen_at + 1);
  wire.source->pause_source(false);
  w.platform.run_until(3 * kSecond);
  EXPECT_GT(wire.sink->stats().osdus_completed, frozen_at + 10);
}

TEST(DataTransfer, DropAtSourceSkipsNewestAndSinkResyncs) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.buffer_osdus = 16;
  Wire wire(w, req);

  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wire.source->submit(payload(200, 4)));
  // Queue holds several unsent OSDUs; drop 3 of the newest.
  const auto dropped = wire.source->drop_at_source(3);
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(wire.source->stats().osdus_dropped_at_source, 3);
  for (int i = 10; i < 14; ++i) ASSERT_TRUE(wire.source->submit(payload(200, 4)));
  w.platform.run_until(3 * kSecond);

  const auto got = drain(*wire.sink);
  // 14 submitted, 3 dropped -> 11 delivered with a seq gap of exactly 3.
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(wire.sink->stats().osdus_skipped, 3);
  std::vector<std::uint32_t> seqs;
  for (const auto& o : got) seqs.push_back(o.seq);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_GT(seqs[i], seqs[i - 1]);
  EXPECT_EQ(seqs.back(), 13u);
}

TEST(DataTransfer, DeliveryGateHoldsDataAtSink) {
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024));
  wire.sink->set_delivery_enabled(false);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(wire.source->submit(payload(100, 5)));
  w.platform.run_until(kSecond);
  EXPECT_FALSE(wire.sink->receive().has_value());
  EXPECT_GE(wire.sink->stats().osdus_completed, 5);  // arrived, held
  wire.sink->set_delivery_enabled(true);
  EXPECT_EQ(drain(*wire.sink).size(), 5u);
}

TEST(DataTransfer, FlushDiscardsStaleMediaAndResyncs) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024);
  req.buffer_osdus = 8;
  Wire wire(w, req);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(wire.source->submit(payload(100, 6)));
  w.platform.run_until(kSecond);
  // Stop-seek-restart (§6.2.1): flush both ends, then send new data.
  wire.source->flush();
  wire.sink->flush();
  EXPECT_FALSE(wire.sink->receive().has_value());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(wire.source->submit(payload(100, 9)));
  w.platform.run_until(2 * kSecond);
  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& o : got) EXPECT_EQ(o.data[0], 9);  // no stale bytes
}

TEST(ErrorControl, LossWithoutCorrectionSkipsAndCounts) {
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.2;
  PairPlatform w(lossy, 7);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024);
  req.service_class.error_control = ErrorControl::kIndicate;
  Wire wire(w, req);
  // A lossy link may eat the first CR/CC; handshake retransmission kicks
  // in within connect_timeout/4 steps.
  w.platform.run_until(3 * kSecond);
  wire.source = w.a->entity.source(wire.vc);
  wire.sink = w.b->entity.sink(wire.vc);
  ASSERT_NE(wire.source, nullptr);

  int submitted = 0;
  for (int i = 0; i < 200; ++i) submitted += wire.source->submit(payload(200, 8));
  w.platform.run_until(10 * kSecond);
  const auto got = drain(*wire.sink);
  EXPECT_LT(got.size(), static_cast<std::size_t>(submitted));
  EXPECT_GT(wire.sink->stats().tpdus_lost, 0);
  // Delivered sequence strictly increases (in-order, gaps allowed).
  for (std::size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i].seq, got[i - 1].seq);
}

TEST(ErrorControl, NakRecoveryDeliversEverythingDespiteLoss) {
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.1;
  PairPlatform w(lossy, 11);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.service_class.error_control = ErrorControl::kCorrect;
  req.buffer_osdus = 32;
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  constexpr int kCount = 100;
  int submitted = 0;
  // Feed gradually so the send ring never rejects.
  for (int burst = 0; burst < kCount / 10; ++burst) {
    w.platform.run_until(w.platform.scheduler().now() + 200 * kMillisecond);
    for (int i = 0; i < 10; ++i) submitted += wire.source->submit(payload(300, 1));
    (void)drain(*wire.sink);
  }
  w.platform.run_until(w.platform.scheduler().now() + 5 * kSecond);
  (void)drain(*wire.sink);

  EXPECT_EQ(submitted, kCount);
  EXPECT_GT(wire.source->stats().tpdus_retransmitted, 0);
  // With NAK recovery everything (or nearly everything — retries are
  // bounded) arrives.
  EXPECT_GE(wire.sink->stats().osdus_delivered, kCount * 95 / 100);
}

TEST(ErrorControl, CorruptionDetectedByCrc) {
  net::LinkConfig noisy = lan_link();
  noisy.bit_error_rate = 2e-5;
  PairPlatform w(noisy, 13);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024);
  req.service_class.error_control = ErrorControl::kIndicate;
  Wire wire(w, req);

  int submitted = 0;
  for (int i = 0; i < 150; ++i) submitted += wire.source->submit(payload(800, 2));
  w.platform.run_until(10 * kSecond);
  EXPECT_GT(wire.sink->stats().tpdus_corrupt, 0);
  // Corrupted TPDUs never surface as data.
  const auto got = drain(*wire.sink);
  for (const auto& o : got)
    for (auto b : o.data) EXPECT_EQ(b, 2);
}

TEST(WindowProfile, DeliversInOrderReliably) {
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.05;
  PairPlatform w(lossy, 17);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.service_class.profile = ProtocolProfile::kWindowBased;
  req.buffer_osdus = 32;
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);

  constexpr int kCount = 60;
  int submitted = 0;
  for (int burst = 0; burst < 6; ++burst) {
    for (int i = 0; i < 10; ++i) submitted += wire.source->submit(payload(300, 3));
    w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);
    (void)drain(*wire.sink);
  }
  w.platform.run_until(w.platform.scheduler().now() + 5 * kSecond);
  (void)drain(*wire.sink);
  EXPECT_EQ(submitted, kCount);
  // Go-back-N: everything submitted is eventually delivered, in order.
  EXPECT_EQ(wire.sink->stats().osdus_delivered, kCount);
  EXPECT_GT(wire.source->stats().tpdus_retransmitted, 0);
}

// Regression (retain-map eviction): in window mode the send window may be
// granted far past retain_limit_.  Evicting *un-acked* TPDUs from the
// retain map would make a single loss unrecoverable (go-back-N has no copy
// left to resend) and stall the circuit forever.  The fix evicts only
// acked entries and clamps the effective window to the retain bound.
TEST(WindowProfile, WindowLargerThanRetainLimitStillRecovers) {
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.12;
  PairPlatform w(lossy, 23);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.service_class.profile = ProtocolProfile::kWindowBased;
  req.buffer_osdus = 32;  // receiver grants ~32 TPDUs of window
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);
  // Retention far below the granted window: pre-fix, every send past 4
  // in-flight evicted an un-acked TPDU, so a loss among the evicted ones
  // stalled the circuit forever.  Each 10-submit burst below goes out
  // back-to-back (well past 4 in flight) before any AK returns.
  wire.source->set_retain_limit(4);

  constexpr int kCount = 60;
  int submitted = 0;
  for (int burst = 0; burst < 6; ++burst) {
    for (int i = 0; i < 10; ++i) submitted += wire.source->submit(payload(300, 5));
    w.platform.run_until(w.platform.scheduler().now() + kSecond);
    (void)drain(*wire.sink);
  }
  w.platform.run_until(w.platform.scheduler().now() + 15 * kSecond);
  (void)drain(*wire.sink);
  EXPECT_EQ(submitted, kCount);
  // Nothing may be stranded: every loss was recoverable from retention.
  EXPECT_EQ(wire.sink->stats().osdus_delivered, kCount);
}

// Regression (fragment-length math): OSDU sizes on the MTU boundary must
// produce exactly total/MTU fragments — an exact multiple must not emit a
// trailing zero-length fragment, and the empty OSDU is exactly one.
TEST(DataTransfer, FragmentCountsAtMtuBoundaries) {
  constexpr std::size_t kMtu = 1400;  // transport MTU (kMaxTpduPayload)
  PairPlatform w;
  Wire wire(w, basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 8 * 1024));
  ASSERT_NE(wire.source, nullptr);

  ASSERT_TRUE(wire.source->submit(std::vector<std::uint8_t>{}));  // 1 TPDU
  ASSERT_TRUE(wire.source->submit(payload(kMtu, 1)));             // 1 TPDU
  ASSERT_TRUE(wire.source->submit(payload(2 * kMtu, 2)));         // 2 TPDUs
  ASSERT_TRUE(wire.source->submit(payload(2 * kMtu + 1, 3)));     // 3 TPDUs
  w.platform.run_until(2 * kSecond);

  EXPECT_EQ(wire.source->stats().tpdus_sent, 1 + 1 + 2 + 3);
  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].data.size(), 0u);
  EXPECT_EQ(got[1].data.size(), kMtu);
  EXPECT_EQ(got[2].data.size(), 2 * kMtu);
  EXPECT_EQ(got[3].data.size(), 2 * kMtu + 1);
  for (std::size_t i = 1; i < got.size(); ++i)
    for (auto b : got[i].data) EXPECT_EQ(b, static_cast<std::uint8_t>(i));
}

// Regression (32-bit OSDU sequence wrap): the delivery cursor and the
// skipped-count arithmetic live on an unwrapped 64-bit timeline.  A stream
// crossing 2^32 must keep delivering in order, and a source-side drop
// spanning the wrap must count exactly the dropped OSDUs — not the 4-billion
// difference the raw 32-bit values suggest.
TEST(DataTransfer, OsduSequenceWrapDeliversAndCountsSkipsExactly) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.buffer_osdus = 16;
  Wire wire(w, req);
  ASSERT_NE(wire.source, nullptr);
  // Start the source three OSDUs shy of the wrap; resync the sink so it
  // anchors its timeline on whatever arrives (as after any seek).
  wire.source->set_next_osdu_seq(0xfffffffdu);
  wire.sink->flush();

  // Seqs fffffffd..2: the pacer sends the first immediately, the rest
  // queue in the ring.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(wire.source->submit(payload(200, 4)));
  // Drop the 3 newest undelivered (seqs 0, 1, 2) — the skip interval
  // straddles the wrap point.
  EXPECT_EQ(wire.source->drop_at_source(3), 3u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(wire.source->submit(payload(200, 4)));
  w.platform.run_until(3 * kSecond);

  const auto got = drain(*wire.sink);
  ASSERT_EQ(got.size(), 7u);  // 10 submitted, 3 dropped
  const std::uint32_t expect_seq[] = {0xfffffffdu, 0xfffffffeu, 0xffffffffu, 3, 4, 5, 6};
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].seq, expect_seq[i]);
  EXPECT_EQ(wire.sink->stats().osdus_skipped, 3);
}

TEST(DataTransfer, StatsCountersConsistent) {
  PairPlatform w;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024);
  req.buffer_osdus = 32;
  Wire wire(w, req);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(wire.source->submit(payload(100, 1)));
  w.platform.run_until(2 * kSecond);
  (void)drain(*wire.sink);
  const auto& src = wire.source->stats();
  const auto& snk = wire.sink->stats();
  EXPECT_EQ(src.osdus_submitted, 20);
  EXPECT_EQ(src.tpdus_sent, 20);  // single-fragment OSDUs
  EXPECT_EQ(snk.tpdus_received, 20);
  EXPECT_EQ(snk.osdus_completed, 20);
  EXPECT_EQ(snk.osdus_delivered, 20);
  EXPECT_EQ(snk.tpdus_lost, 0);
  EXPECT_EQ(snk.tpdus_corrupt, 0);
}

}  // namespace
}  // namespace cmtos::test
