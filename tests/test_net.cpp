// Unit tests for the network substrate: links, routing, forwarding,
// reservation/admission control, degradation injection.

#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "net/network.h"
#include "sim/scheduler.h"

namespace cmtos::net {
namespace {

struct NetWorld {
  sim::Scheduler sched;
  Network net{sched, Rng(1)};
};

Packet make_packet(NodeId src, NodeId dst, std::size_t payload = 100,
                   Proto proto = Proto::kTransportData) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = proto;
  p.payload.assign(payload, 0xaa);
  return p;
}

TEST(Link, SerialisationPlusPropagationDelay) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;  // 1 Mbit/s
  cfg.propagation_delay = 5 * kMillisecond;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  Time arrival = -1;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&&) { arrival = w.sched.now(); });
  w.net.send(make_packet(a, b, 1000 - kPacketHeaderBytes));  // wire = 1000 B
  w.sched.run();
  // 1000 B at 1 Mbit/s = 8 ms serialisation + 5 ms propagation.
  EXPECT_EQ(arrival, 8 * kMillisecond + 5 * kMillisecond);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;  // 1 B/us
  cfg.propagation_delay = 0;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  std::vector<Time> arrivals;
  w.net.node(b).set_handler(Proto::kTransportData,
                            [&](Packet&&) { arrivals.push_back(w.sched.now()); });
  w.net.send(make_packet(a, b, 968));  // wire 1000 B -> 1 ms
  w.net.send(make_packet(a, b, 968));
  w.sched.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1 * kMillisecond);
  EXPECT_EQ(arrivals[1], 2 * kMillisecond);  // serialised after the first
}

TEST(Link, QueueOverflowDrops) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000;  // very slow: 1 ms per byte
  cfg.queue_limit_packets = 4;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  int received = 0;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&&) { ++received; });
  for (int i = 0; i < 20; ++i) w.net.send(make_packet(a, b, 10));
  w.sched.run();
  // 4 queued + 1 in serialisation survive at most.
  EXPECT_LE(received, 5);
  EXPECT_GT(w.net.link(a, b)->stats().dropped_queue_overflow, 0);
}

TEST(Link, BernoulliLossDropsApproximateFraction) {
  NetWorld w;
  LinkConfig cfg;
  cfg.loss_rate = 0.3;
  cfg.propagation_delay = 0;
  cfg.queue_limit_packets = 100000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  int received = 0;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&&) { ++received; });
  constexpr int kSent = 5000;
  for (int i = 0; i < kSent; ++i) w.net.send(make_packet(a, b, 10));
  w.sched.run();
  EXPECT_NEAR(static_cast<double>(received) / kSent, 0.7, 0.03);
}

TEST(Link, GilbertElliottProducesBursts) {
  NetWorld w;
  LinkConfig cfg;
  cfg.burst_loss = true;
  cfg.ge_p_good_to_bad = 0.02;
  cfg.ge_p_bad_to_good = 0.2;
  cfg.ge_loss_in_bad = 0.8;
  cfg.propagation_delay = 0;
  cfg.queue_limit_packets = 100000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  // Track the loss pattern via a sequence number in the payload size.
  std::vector<bool> got(3000, false);
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&& p) {
    got[p.payload.size()] = true;
  });
  for (std::size_t i = 0; i < got.size(); ++i) w.net.send(make_packet(a, b, i));
  w.sched.run();

  int losses = 0, burst_pairs = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!got[i]) {
      ++losses;
      if (i > 0 && !got[i - 1]) ++burst_pairs;
    }
  }
  ASSERT_GT(losses, 20);
  // Burstiness: consecutive losses far more common than independent loss
  // at the same average rate would produce.
  const double p = static_cast<double>(losses) / static_cast<double>(got.size());
  const double expected_indep_pairs = p * static_cast<double>(losses);
  EXPECT_GT(burst_pairs, 2 * expected_indep_pairs);
}

TEST(Link, BitErrorsFlipRealPayloadBytes) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bit_error_rate = 1e-4;  // 1000-byte packet: ~55% corruption chance
  cfg.queue_limit_packets = 100000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  // Every packet carries a known byte pattern; a corrupted delivery is one
  // whose *actual bytes* differ — there is no metadata flag any more.
  int corrupted = 0, total = 0;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&& p) {
    ++total;
    const bool damaged =
        std::any_of(p.payload.begin(), p.payload.end(), [](std::uint8_t x) { return x != 0xaa; });
    corrupted += damaged ? 1 : 0;
  });
  for (int i = 0; i < 2000; ++i) w.net.send(make_packet(a, b, 1000));
  w.sched.run();
  EXPECT_EQ(total, 2000);
  EXPECT_NEAR(static_cast<double>(corrupted) / total, 0.56, 0.05);
  // The link counted exactly the packets it damaged.
  EXPECT_EQ(w.net.link(a, b)->stats().corrupted, corrupted);
}

TEST(Link, DuplicationDeliversExtraCopies) {
  NetWorld w;
  LinkConfig cfg;
  cfg.dup_rate = 0.3;
  cfg.queue_limit_packets = 100000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  int total = 0;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&& p) {
    ++total;
    // Copies are byte-identical to the original.
    for (std::uint8_t x : p.payload) EXPECT_EQ(x, 0xaa);
  });
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) w.net.send(make_packet(a, b, 100));
  w.sched.run();
  const auto& st = w.net.link(a, b)->stats();
  EXPECT_EQ(total, sent + st.duplicated);
  EXPECT_NEAR(static_cast<double>(st.duplicated) / sent, 0.3, 0.05);
}

TEST(Link, TruncationCutsWireBytes) {
  NetWorld w;
  LinkConfig cfg;
  cfg.truncate_rate = 0.5;
  cfg.queue_limit_packets = 100000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  int total = 0, shorter = 0;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&& p) {
    ++total;
    EXPECT_LE(p.payload.size(), 100u);  // never grows
    if (p.payload.size() < 100u) ++shorter;
  });
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) w.net.send(make_packet(a, b, 100));
  w.sched.run();
  EXPECT_EQ(total, sent);  // truncation damages, never drops
  EXPECT_EQ(w.net.link(a, b)->stats().truncated, shorter);
  EXPECT_NEAR(static_cast<double>(shorter) / sent, 0.5, 0.05);
}

TEST(Link, ReorderingHoldsPacketsWithinWindow) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 40'000'000;  // 500 B packet = 100 us serialisation
  cfg.propagation_delay = 1 * kMillisecond;
  cfg.reorder_rate = 0.2;
  cfg.reorder_window = 5 * kMillisecond;
  cfg.queue_limit_packets = 100000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  // Sequence rides in the first payload bytes; record arrival order.
  std::vector<std::uint32_t> order;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&& p) {
    std::uint32_t seq = 0;
    for (int i = 0; i < 4; ++i)
      seq |= static_cast<std::uint32_t>(p.payload[static_cast<std::size_t>(i)]) << (8 * i);
    order.push_back(seq);
  });
  const std::uint32_t sent = 1000;
  for (std::uint32_t i = 0; i < sent; ++i) {
    auto p = make_packet(a, b, 500 - kPacketHeaderBytes);
    for (int j = 0; j < 4; ++j)
      p.payload[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(i >> (8 * j));
    w.net.send(std::move(p));
  }
  w.sched.run();
  ASSERT_EQ(order.size(), sent);
  std::size_t inversions = 0;
  std::size_t max_displacement = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t seq = order[pos];
    if (seq != pos) {
      if (pos > 0 && order[pos] < order[pos - 1]) ++inversions;
      max_displacement =
          std::max(max_displacement, seq > pos ? seq - pos : pos - seq);
    }
  }
  EXPECT_GT(w.net.link(a, b)->stats().reordered, 100);
  EXPECT_GT(inversions, 0u);
  // Bounded displacement: a held packet can only be overtaken by the ~50
  // packets that serialise inside its 5 ms window (100 us each).
  EXPECT_LT(max_displacement, 120u);
}

TEST(Routing, ShortestPathInLine) {
  NetWorld w;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  const NodeId c = w.net.add_node("c");
  w.net.add_link(a, b, {});
  w.net.add_link(b, c, {});
  w.net.finalize_routes();
  EXPECT_EQ(w.net.path(a, c), (std::vector<NodeId>{a, b, c}));
  EXPECT_EQ(w.net.path(c, a), (std::vector<NodeId>{c, b, a}));
  EXPECT_EQ(w.net.path(a, a), (std::vector<NodeId>{a}));
}

TEST(Routing, PrefersFewerHops) {
  NetWorld w;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  const NodeId c = w.net.add_node("c");
  w.net.add_link(a, b, {});
  w.net.add_link(b, c, {});
  w.net.add_link(a, c, {});  // direct
  w.net.finalize_routes();
  EXPECT_EQ(w.net.path(a, c).size(), 2u);
}

TEST(Routing, UnreachableIsEmpty) {
  NetWorld w;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_node("island");
  w.net.add_link(a, b, {});
  w.net.finalize_routes();
  EXPECT_TRUE(w.net.path(a, 2).empty());
}

TEST(Routing, MultiHopForwarding) {
  NetWorld w;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  const NodeId c = w.net.add_node("c");
  w.net.add_link(a, b, {});
  w.net.add_link(b, c, {});
  w.net.finalize_routes();

  int hops = -1;
  w.net.node(c).set_handler(Proto::kTransportData, [&](Packet&& p) { hops = p.hops; });
  w.net.send(make_packet(a, c));
  w.sched.run();
  EXPECT_EQ(hops, 2);
}

TEST(Routing, LoopbackDeliversLocally) {
  NetWorld w;
  const NodeId a = w.net.add_node("a");
  w.net.finalize_routes();
  bool got = false;
  w.net.node(a).set_handler(Proto::kTransportData, [&](Packet&&) { got = true; });
  w.net.send(make_packet(a, a));
  w.sched.run();
  EXPECT_TRUE(got);
}

TEST(Reservation, AdmitsUpToReservableFraction) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 10'000'000;
  cfg.reservable_fraction = 0.9;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  auto r1 = w.net.reserve(a, b, 5'000'000);
  ASSERT_TRUE(r1.has_value());
  auto r2 = w.net.reserve(a, b, 4'000'000);
  ASSERT_TRUE(r2.has_value());
  // 9.0 of 9.0 Mbit/s now reserved.
  EXPECT_FALSE(w.net.reserve(a, b, 1).has_value());
  w.net.release(*r2);
  EXPECT_TRUE(w.net.reserve(a, b, 4'000'000).has_value());
}

TEST(Reservation, AllOrNothingAlongPath) {
  NetWorld w;
  LinkConfig fat;
  fat.bandwidth_bps = 100'000'000;
  LinkConfig thin;
  thin.bandwidth_bps = 1'000'000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  const NodeId c = w.net.add_node("c");
  w.net.add_link(a, b, fat);
  w.net.add_link(b, c, thin);
  w.net.finalize_routes();

  // The thin link caps the path.
  EXPECT_FALSE(w.net.reserve(a, c, 2'000'000).has_value());
  auto ok = w.net.reserve(a, c, 500'000);
  ASSERT_TRUE(ok.has_value());
  // Both links carry the reservation.
  EXPECT_EQ(w.net.reserved_on(a, b), 500'000);
  EXPECT_EQ(w.net.reserved_on(b, c), 500'000);
  w.net.release(*ok);
  EXPECT_EQ(w.net.reserved_on(a, b), 0);
  EXPECT_EQ(w.net.reserved_on(b, c), 0);
}

TEST(Reservation, AdjustUpAndDown) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 10'000'000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();

  auto r = w.net.reserve(a, b, 4'000'000);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(w.net.adjust_reservation(*r, 8'000'000));
  EXPECT_EQ(w.net.reserved_on(a, b), 8'000'000);
  EXPECT_FALSE(w.net.adjust_reservation(*r, 10'000'000));  // over 90%
  EXPECT_EQ(w.net.reserved_on(a, b), 8'000'000);            // unchanged on failure
  EXPECT_TRUE(w.net.adjust_reservation(*r, 1'000'000));
  EXPECT_EQ(w.net.reserved_on(a, b), 1'000'000);
}

TEST(Reservation, DisabledAdmissionAcceptsEverything) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, cfg);
  w.net.finalize_routes();
  w.net.set_admission_control(false);
  EXPECT_TRUE(w.net.reserve(a, b, 50'000'000).has_value());
  EXPECT_TRUE(w.net.reserve(a, b, 50'000'000).has_value());
}

TEST(Reservation, AvailableBpsTracksPathMinimum) {
  NetWorld w;
  LinkConfig fat;
  fat.bandwidth_bps = 100'000'000;
  fat.reservable_fraction = 1.0;
  LinkConfig thin;
  thin.bandwidth_bps = 2'000'000;
  thin.reservable_fraction = 1.0;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  const NodeId c = w.net.add_node("c");
  w.net.add_link(a, b, fat);
  w.net.add_link(b, c, thin);
  w.net.finalize_routes();
  EXPECT_EQ(w.net.available_bps(a, c), 2'000'000);
  auto r = w.net.reserve(a, c, 500'000);
  ASSERT_TRUE(r);
  EXPECT_EQ(w.net.available_bps(a, c), 1'500'000);
}

TEST(Link, MidRunDegradationTakesEffect) {
  NetWorld w;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  w.net.add_link(a, b, {});
  w.net.finalize_routes();

  int received = 0;
  w.net.node(b).set_handler(Proto::kTransportData, [&](Packet&&) { ++received; });
  for (int i = 0; i < 100; ++i) w.net.send(make_packet(a, b, 10));
  w.sched.run();
  EXPECT_EQ(received, 100);

  w.net.link(a, b)->set_loss_rate(1.0);  // total blackout
  for (int i = 0; i < 100; ++i) w.net.send(make_packet(a, b, 10));
  w.sched.run();
  EXPECT_EQ(received, 100);
}

TEST(Network, PathDelayEstimateSumsHops) {
  NetWorld w;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.propagation_delay = 2 * kMillisecond;
  const NodeId a = w.net.add_node("a");
  const NodeId b = w.net.add_node("b");
  const NodeId c = w.net.add_node("c");
  w.net.add_link(a, b, cfg);
  w.net.add_link(b, c, cfg);
  w.net.finalize_routes();
  // Per hop: 1000 B at 8 Mbit/s = 1 ms + 2 ms prop.
  EXPECT_EQ(w.net.path_delay_estimate(a, c, 1000), 2 * (1 + 2) * kMillisecond);
}

}  // namespace
}  // namespace cmtos::net
