// Hierarchical timer wheel tests (sim/node_runtime): far-future cascades
// across wheel levels, cancel/re-arm races at the same tick, mass-cancel on
// crash-style teardown, and a wheel-vs-reference-heap differential soak over
// seeded random schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/scheduler.h"
#include "util/time.h"

namespace cmtos::sim {
namespace {

TEST(TimerWheel, FiresAcrossAllLevelsInOrder) {
  Scheduler s;
  std::vector<int> order;
  // One event per wheel level plus the far heap (span is 64^4 ms ~ 4.66 h).
  s.at(5 * kMillisecond, [&] { order.push_back(0); });       // level 0
  s.at(3 * kSecond, [&] { order.push_back(1); });            // level 1
  s.at(100 * kSecond, [&] { order.push_back(2); });          // level 2
  s.at(10000 * kSecond, [&] { order.push_back(3); });        // level 3
  s.at(20000 * kSecond, [&] { order.push_back(4); });        // far heap
  EXPECT_EQ(s.run(), 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.now(), 20000 * kSecond);
}

TEST(TimerWheel, CascadeReWheelsToLowerLevel) {
  Scheduler s;
  std::vector<int> order;
  // Both land in the same level-2 bucket from base 0; draining that bucket
  // advances the base to the first event's tick and must re-wheel the second
  // at a lower level, not fire it early or lose it.
  s.at(260 * kSecond, [&] { order.push_back(1); });
  s.at(261 * kSecond, [&] { order.push_back(2); });
  s.at(260 * kSecond + 500 * kMillisecond, [&] { order.push_back(3); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(s.now(), 261 * kSecond);
}

TEST(TimerWheel, SubTickOrderingWithinOneBucket) {
  Scheduler s;
  std::vector<int> order;
  // Same 1 ms tick, different nanosecond times: bucket residency must not
  // coarsen ordering below tick granularity.
  const Time base = 100 * kSecond;
  s.at(base + 900'000, [&] { order.push_back(2); });
  s.at(base + 100'000, [&] { order.push_back(1); });
  s.at(base + 900'000, [&] { order.push_back(3); });  // tie -> insertion order
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, CancelAndReArmAtSameTick) {
  Scheduler s;
  std::vector<int> order;
  const Time t = 50 * kSecond;
  EventHandle victim;  // armed below, after the armer, so it has a later seq
  s.at(t, [&] {
    // Runs at the same tick as `victim` (same time, earlier seq): cancelling
    // and re-arming at the current time must take effect within the tick.
    victim.cancel();
    s.at(t, [&] { order.push_back(2); });
    order.push_back(1);
  });
  victim = s.at(t, [&] { order.push_back(99); });
  EXPECT_EQ(s.run(), 2u);  // armer + re-armed; the cancelled victim never fires
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(victim.pending());
}

TEST(TimerWheel, CancelledThenReArmedHandleDoesNotAliasOldSlot) {
  Scheduler s;
  int fired = 0;
  EventHandle h1 = s.at(10 * kSecond, [&] { fired += 1; });
  h1.cancel();
  // The recycled slot gets a new generation; the stale handle must stay inert.
  EventHandle h2 = s.at(10 * kSecond, [&] { fired += 10; });
  h1.cancel();  // no-op: must not kill h2
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(fired, 10);
}

TEST(TimerWheel, MassCancelOnCrashStyleTeardown) {
  Scheduler s;
  int fired = 0;
  std::mt19937_64 rng(7);
  std::vector<EventHandle> handles;
  // 10k timers spread across every wheel level and the far heap, as a node
  // crash would leave behind (keepalives, retransmits, regulation slots).
  for (int i = 0; i < 10000; ++i) {
    const Time t = static_cast<Time>(rng() % (30000ull * kSecond)) + 1;
    handles.push_back(s.at(t, [&] { ++fired; }));
  }
  EXPECT_EQ(s.pending(), 10000u);
  for (EventHandle& h : handles) h.cancel();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.run(), 0u);
  EXPECT_EQ(fired, 0);
  // The structure stays usable after the mass cancel (compaction path).
  std::vector<int> order;
  s.at(s.now() + 5 * kSecond, [&] { order.push_back(1); });
  s.at(s.now() + 300 * kSecond, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, DifferentialVsReferenceHeapOverSeededSchedules) {
  // Reference model: events fire in exact (time, seq) order, where seq is
  // the schedule-call order; cancelled events never fire.  Batches separated
  // by run_until checkpoints force base advances mid-schedule.
  for (const std::uint64_t seed : {1ull, 7ull, 20260807ull}) {
    Scheduler s;
    std::mt19937_64 rng(seed);

    struct Ref {
      Time time = 0;
      std::uint64_t seq = 0;
      int id = 0;
    };
    std::vector<Ref> ref;          // live reference entries (not yet fired)
    std::vector<int> fired;        // actual firing order (by id)
    std::vector<int> expect;       // reference firing order (by id)
    std::vector<std::pair<int, EventHandle>> handles;
    std::uint64_t seq = 0;
    int next_id = 0;

    auto checkpoint = [&](Time until) {
      s.run_until(until);
      // Everything with time <= until fires, in (time, seq) order.
      std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
      });
      auto it = ref.begin();
      for (; it != ref.end() && it->time <= until; ++it) expect.push_back(it->id);
      ref.erase(ref.begin(), it);
    };

    for (int batch = 0; batch < 6; ++batch) {
      const Time now = s.now();
      for (int i = 0; i < 300; ++i) {
        // Mix of near (sub-tick), wheel-resident, and far-heap delays, with
        // deliberate same-time collisions to exercise seq tie-breaks.
        Time d = 0;
        switch (rng() % 5) {
          case 0: d = static_cast<Time>(rng() % (2 * kMillisecond)); break;
          case 1: d = static_cast<Time>(rng() % (60 * kMillisecond)); break;
          case 2: d = static_cast<Time>(rng() % (4 * kSecond)); break;
          case 3: d = static_cast<Time>(rng() % (300 * kSecond)); break;
          default: d = static_cast<Time>(rng() % (20000ull * kSecond)); break;
        }
        if (rng() % 8 == 0) d = (d / kSecond) * kSecond;  // exact-tick collision
        const int id = next_id++;
        handles.emplace_back(id, s.at(now + d, [&fired, id] { fired.push_back(id); }));
        ref.push_back({now + d, seq++, id});
      }
      // Cancel a random slice of still-pending events.
      for (int i = 0; i < 60; ++i) {
        const std::size_t pick = rng() % handles.size();
        const int id = handles[pick].first;
        handles[pick].second.cancel();
        std::erase_if(ref, [id](const Ref& r) { return r.id == id; });
      }
      checkpoint(s.now() + static_cast<Time>(rng() % (500 * kSecond)));
    }
    checkpoint(40000 * kSecond);
    EXPECT_TRUE(ref.empty()) << "seed " << seed;
    EXPECT_EQ(fired, expect) << "seed " << seed;
    EXPECT_EQ(s.pending(), 0u);
  }
}

TEST(TimerWheel, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Scheduler s;
    std::mt19937_64 rng(99);
    std::vector<int> order;
    for (int i = 0; i < 2000; ++i) {
      const Time t = static_cast<Time>(rng() % (25000ull * kSecond)) + 1;
      const int id = i;
      EventHandle h = s.at(t, [&order, id] { order.push_back(id); });
      if (rng() % 4 == 0) h.cancel();
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cmtos::sim
