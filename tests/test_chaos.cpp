// Chaos tests: deterministic fault injection (sim/chaos + the platform
// fault model), transport liveness under node crash, RPC retry across
// transient partitions, tightened control-path timeouts, Gilbert–Elliott
// burst loss under a full orchestrated session, and orchestrator failover
// (orch/failover) — the acceptance scenario of the robustness milestone.

#include <gtest/gtest.h>

#include <optional>

#include "fixtures.h"
#include "obs/metrics.h"
#include "orch/failover.h"
#include "sim/chaos.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;
using orch::OrchPolicy;
using platform::RpcOutcome;
using transport::DisconnectReason;
using transport::TransportConfig;

// ====================================================================
// Chaos engine: replayability
// ====================================================================

/// Runs a multi-fault plan (crash, loss storm, partition + auto-heal,
/// jitter storm, restart — every event with start jitter, so the plan seed
/// matters) against a fresh world and returns the fault log.
std::vector<std::string> run_soak(std::uint64_t plan_seed) {
  StarPlatform star(3, lan_link(), 7);
  const net::NodeId hub = star.hub->id;
  const net::NodeId l0 = star.leaves[0]->id;
  const net::NodeId l1 = star.leaves[1]->id;
  const net::NodeId l2 = star.leaves[2]->id;

  sim::ChaosPlan plan;
  plan.seed = plan_seed;
  plan.crash(100 * kMillisecond, l0)
      .loss_storm(150 * kMillisecond, hub, l1, 0.5, 200 * kMillisecond)
      .partition(200 * kMillisecond, hub, l2, 300 * kMillisecond)
      .jitter_storm(250 * kMillisecond, hub, l1, 2 * kMillisecond, 100 * kMillisecond)
      .restart(600 * kMillisecond, l0);
  for (auto& e : plan.events) e.start_jitter = 50 * kMillisecond;

  sim::ChaosEngine engine(star.platform.scheduler(), star.platform.chaos_target());
  engine.arm(plan);
  star.platform.run_until(2 * kSecond);
  // crash + loss storm + cut + auto-heal + jitter storm + restart.
  EXPECT_GE(engine.injected(), 6);
  return engine.log();
}

TEST(ChaosEngine, SameSeedReproducesIdenticalFaultTrace) {
  const auto log1 = run_soak(11);
  const auto log2 = run_soak(11);
  ASSERT_FALSE(log1.empty());
  EXPECT_EQ(log1, log2);
}

TEST(ChaosEngine, DifferentSeedMovesJitteredStartTimes) {
  EXPECT_NE(run_soak(11), run_soak(12));
}

// ====================================================================
// Transport liveness
// ====================================================================

TEST(TransportLiveness, CrashedPeerTearsDownVcWithPeerDead) {
  PairPlatform w;
  TransportConfig tc;
  tc.keepalive_interval = 100 * kMillisecond;
  tc.peer_dead_after = 400 * kMillisecond;
  w.a->entity.set_config(tc);
  w.b->entity.set_config(tc);

  ScriptedUser src(w.a->entity), dst(w.b->entity);
  w.a->entity.bind(10, &src);
  w.b->entity.bind(20, &dst);
  w.a->entity.t_connect_request(basic_request({w.a->id, 10}, {w.b->id, 20}));
  w.platform.run_until(500 * kMillisecond);
  ASSERT_EQ(src.confirms.size(), 1u);
  EXPECT_GT(w.platform.network().reserved_on(w.a->id, w.b->id), 0);

  w.platform.crash_node(w.b->id);
  w.platform.run_until(2 * kSecond);

  // The crashed side's user heard its own stack die ...
  ASSERT_EQ(dst.disconnects.size(), 1u);
  EXPECT_EQ(dst.disconnects[0].second, DisconnectReason::kEntityFailure);
  // ... and the surviving endpoint noticed the silence, freed the VC and
  // returned the reservation.
  ASSERT_EQ(src.disconnects.size(), 1u);
  EXPECT_EQ(src.disconnects[0].second, DisconnectReason::kPeerDead);
  EXPECT_EQ(w.platform.network().reserved_on(w.a->id, w.b->id), 0);
}

TEST(TransportLiveness, DisabledByDefault) {
  PairPlatform w;
  ScriptedUser src(w.a->entity), dst(w.b->entity);
  w.a->entity.bind(10, &src);
  w.b->entity.bind(20, &dst);
  w.a->entity.t_connect_request(basic_request({w.a->id, 10}, {w.b->id, 20}));
  w.platform.run_until(500 * kMillisecond);
  ASSERT_EQ(src.confirms.size(), 1u);

  w.platform.crash_node(w.b->id);
  w.platform.run_until(5 * kSecond);
  // peer_dead_after = 0: no keepalives, no liveness verdict — the survivor
  // never learns (the historical behaviour, unchanged by default).
  EXPECT_TRUE(src.disconnects.empty());
}

// ====================================================================
// Tightened control-path timeouts (the knobs were hardcoded constants)
// ====================================================================

TEST(ControlTimeouts, TightenedConnectTimeoutFailsFast) {
  PairPlatform w;
  ScriptedUser src(w.a->entity);
  w.a->entity.bind(10, &src);
  w.a->entity.set_connect_timeout(250 * kMillisecond);

  w.platform.crash_node(w.b->id);
  w.a->entity.t_connect_request(basic_request({w.a->id, 10}, {w.b->id, 20}));
  w.platform.run_until(200 * kMillisecond);
  EXPECT_TRUE(src.disconnects.empty());  // still inside the budget
  w.platform.run_until(600 * kMillisecond);
  ASSERT_EQ(src.disconnects.size(), 1u);  // default budget would be 2 s
  EXPECT_EQ(src.disconnects[0].second, DisconnectReason::kUnreachable);
}

TEST(ControlTimeouts, TightenedOrchOpTimeoutFailsFast) {
  StarPlatform star(2, lan_link(), 5);
  auto* a = star.leaves[0];
  auto* b = star.leaves[1];
  star.platform.crash_node(b->id);
  a->llo.set_op_timeout(300 * kMillisecond);

  std::optional<bool> ok;
  orch::OrchReason reason = orch::OrchReason::kOk;
  a->llo.orch_request(1, std::vector<orch::OrchVcInfo>{{7, a->id, b->id}},
                      [&](bool o, orch::OrchReason r) {
                        ok = o;
                        reason = r;
                      });
  star.platform.run_until(250 * kMillisecond);
  EXPECT_FALSE(ok.has_value());  // still collecting acks
  star.platform.run_until(kSecond);
  ASSERT_TRUE(ok.has_value());  // default budget would be 5 s
  EXPECT_FALSE(*ok);
  EXPECT_EQ(reason, orch::OrchReason::kTimeout);
}

TEST(HandshakeJitter, StretchesRetransmissionSchedule) {
  // Identical worlds and seeds, differing only in the jitter knob: the
  // stretch-only jitter must lower the retransmission count over a fixed
  // horizon.  Deterministic because the simulation is.
  auto handshake_packets = [](double jitter) {
    PairPlatform w;
    TransportConfig tc;
    tc.connect_timeout = 10 * kSecond;
    tc.handshake_retransmit = 100 * kMillisecond;
    tc.handshake_retries = 1000;
    tc.handshake_jitter = jitter;
    w.a->entity.set_config(tc);
    ScriptedUser src(w.a->entity);
    w.a->entity.bind(10, &src);
    w.platform.crash_node(w.b->id);
    w.a->entity.t_connect_request(basic_request({w.a->id, 10}, {w.b->id, 20}));
    w.platform.run_until(2 * kSecond);
    return w.platform.network().link(w.a->id, w.b->id)->stats().packets_sent;
  };
  const auto without = handshake_packets(0.0);
  const auto with = handshake_packets(1.0);
  EXPECT_GT(with, 0);
  EXPECT_GT(without, with);
}

// ====================================================================
// RPC retry across partitions
// ====================================================================

platform::RpcRetryPolicy retry_policy(int attempts) {
  platform::RpcRetryPolicy pol;
  pol.max_attempts = attempts;
  pol.base = 100 * kMillisecond;
  return pol;
}

TEST(RpcRetry, TransientPartitionHealsTransparently) {
  PairPlatform w;
  w.b->rpc.register_op("echo", "ping", [](std::span<const std::uint8_t> in) {
    return std::optional<std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>(in.begin(), in.end()));
  });
  w.a->rpc.set_retry_policy(retry_policy(5));

  w.platform.network().set_link_up(w.a->id, w.b->id, false);
  w.platform.scheduler().after(500 * kMillisecond, [&] {
    w.platform.network().set_link_up(w.a->id, w.b->id, true);
  });

  std::optional<RpcOutcome> out;
  w.a->rpc.invoke(w.b->id, "echo", "ping", std::vector<std::uint8_t>{1, 2, 3},
                  150 * kMillisecond,
                  [&](RpcOutcome o, std::span<const std::uint8_t>) { out = o; });
  w.platform.run_until(5 * kSecond);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, RpcOutcome::kOk);
}

TEST(RpcRetry, HardPartitionStillSurfacesTimeout) {
  PairPlatform w;
  w.b->rpc.register_op("echo", "ping", [](std::span<const std::uint8_t>) {
    return std::optional<std::vector<std::uint8_t>>(std::vector<std::uint8_t>{});
  });
  w.a->rpc.set_retry_policy(retry_policy(4));
  w.platform.network().set_link_up(w.a->id, w.b->id, false);  // never heals

  std::optional<RpcOutcome> out;
  w.a->rpc.invoke(w.b->id, "echo", "ping", {}, 150 * kMillisecond,
                  [&](RpcOutcome o, std::span<const std::uint8_t>) { out = o; });
  w.platform.run_until(10 * kSecond);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, RpcOutcome::kTimeout);
}

// ====================================================================
// Orchestrator failover
// ====================================================================

/// hub + four leaves; three orchestrated streams laid out so that the
/// elected orchestrating node (wsC: touches two VCs, both as sink) is NOT
/// an endpoint of every VC — s1 survives its death:
///
///   s1: srv1 -> wsB      (the survivor)
///   s2: srv1 -> wsC
///   s3: srv2 -> wsC
struct FailoverWorld {
  explicit FailoverWorld(orch::FailoverConfig fc = {200 * kMillisecond, kSecond})
      : star(4, lan_link(), 20260805) {
    srv1 = star.leaves[0];
    wsB = star.leaves[1];
    wsC = star.leaves[2];
    srv2 = star.leaves[3];
    p = &star.platform;

    TransportConfig tc;
    tc.keepalive_interval = 200 * kMillisecond;
    tc.peer_dead_after = 800 * kMillisecond;
    for (auto* h : {star.hub, srv1, wsB, wsC, srv2}) h->entity.set_config(tc);

    platform::VideoQos vq;
    vq.frames_per_second = 25;

    server1 = std::make_unique<StoredMediaServer>(*p, *srv1, "srv1");
    TrackConfig t1;
    t1.track_id = 1;
    t1.auto_start = false;
    t1.vbr.base_bytes = vq.frame_bytes();
    t1.vbr.gop = 0;
    t1.vbr.wobble = 0;
    TrackConfig t2 = t1;
    t2.track_id = 2;
    src1 = server1->add_track(100, t1);
    src2 = server1->add_track(101, t2);
    server2 = std::make_unique<StoredMediaServer>(*p, *srv2, "srv2");
    TrackConfig t3 = t1;
    t3.track_id = 3;
    src3 = server2->add_track(102, t3);

    RenderConfig r1;
    r1.expect_track = 1;
    sink1 = std::make_unique<RenderingSink>(*p, *wsB, 200, r1);
    RenderConfig r2;
    r2.expect_track = 2;
    sink2 = std::make_unique<RenderingSink>(*p, *wsC, 201, r2);
    RenderConfig r3;
    r3.expect_track = 3;
    sink3 = std::make_unique<RenderingSink>(*p, *wsC, 202, r3);

    s1 = std::make_unique<platform::Stream>(*p, *srv1, "s1");
    s2 = std::make_unique<platform::Stream>(*p, *srv1, "s2");
    s3 = std::make_unique<platform::Stream>(*p, *srv2, "s3");
    int connected = 0;
    auto on_conn = [&](bool ok, auto) { connected += ok; };
    s1->set_buffer_osdus(8);
    s2->set_buffer_osdus(8);
    s3->set_buffer_osdus(8);
    s1->connect(src1, {wsB->id, 200}, vq, {}, on_conn);
    s2->connect(src2, {wsC->id, 201}, vq, {}, on_conn);
    s3->connect(src3, {wsC->id, 202}, vq, {}, on_conn);
    p->run_until(500 * kMillisecond);
    EXPECT_EQ(connected, 3);

    OrchPolicy policy;
    policy.interval = 100 * kMillisecond;
    policy.allow_no_common_node = true;
    bool established = false;
    auto session = p->orchestrator().orchestrate(
        {s1->orch_spec(2), s2->orch_spec(2), s3->orch_spec(2)}, policy,
        [&](bool ok, orch::OrchReason) { established = ok; });
    EXPECT_NE(session, nullptr);
    if (session == nullptr) return;
    EXPECT_EQ(session->orchestrating_node(), wsC->id);
    p->run_until(kSecond);
    EXPECT_TRUE(established);

    supervisor = std::make_unique<orch::FailoverSupervisor>(
        p->scheduler(), p->orchestrator(),
        [this](net::NodeId n) { return &p->host(n).llo; },
        [this](net::NodeId n) { return p->node_alive(n); }, fc);
    supervisor->watch(std::move(session));

    bool primed = false, started = false;
    supervisor->session()->prime(false, [&](bool ok, auto) { primed = ok; });
    p->run_until(2500 * kMillisecond);
    EXPECT_TRUE(primed);
    supervisor->session()->start([&](bool ok, auto) { started = ok; });
    p->run_until(3 * kSecond);
    EXPECT_TRUE(started);
  }

  std::int64_t surviving_intervals() {
    const auto& st = supervisor->session()->agent().status();
    auto it = st.find(s1->vc());
    return it == st.end() ? -1 : it->second.intervals;
  }

  StarPlatform star;
  platform::Platform* p = nullptr;
  platform::Host* srv1 = nullptr;
  platform::Host* wsB = nullptr;
  platform::Host* wsC = nullptr;
  platform::Host* srv2 = nullptr;
  std::unique_ptr<StoredMediaServer> server1, server2;
  std::unique_ptr<RenderingSink> sink1, sink2, sink3;
  std::unique_ptr<platform::Stream> s1, s2, s3;
  std::unique_ptr<orch::FailoverSupervisor> supervisor;
  net::NetAddress src1, src2, src3;
};

TEST(Failover, OrchestratorDeathReElectsAndResumesSurvivors) {
  FailoverWorld w;
  w.p->run_until(5 * kSecond);
  const auto frames_before = w.sink1->stats().frames_rendered;
  EXPECT_GT(frames_before, 0);

  net::NodeId old_node = net::kInvalidNode, new_node = net::kInvalidNode;
  w.supervisor->set_on_failover([&](net::NodeId o, net::NodeId n) {
    old_node = o;
    new_node = n;
  });

  // Kill the orchestrating node mid-regulation, through the chaos engine so
  // the fault is logged and counted like any soak scenario.
  sim::ChaosEngine engine(w.p->scheduler(), w.p->chaos_target());
  sim::ChaosPlan plan;
  plan.crash(5 * kSecond + kMillisecond, w.wsC->id);
  engine.arm(plan);
  w.p->run_until(8 * kSecond);

  EXPECT_EQ(engine.injected(), 1);
  EXPECT_EQ(w.supervisor->failovers(), 1);
  EXPECT_FALSE(w.supervisor->orphaned());
  EXPECT_EQ(old_node, w.wsC->id);
  EXPECT_EQ(new_node, w.wsB->id);  // survivor's sink wins the re-election
  ASSERT_NE(w.supervisor->session(), nullptr);
  EXPECT_EQ(w.supervisor->session()->orchestrating_node(), w.wsB->id);

  // Only the surviving stream was rebuilt, and it is being re-regulated.
  auto& agent = w.supervisor->session()->agent();
  ASSERT_EQ(agent.streams().size(), 1u);
  EXPECT_EQ(agent.streams()[0].vc.vc, w.s1->vc());
  const auto intervals_mid = w.surviving_intervals();
  EXPECT_GT(intervals_mid, 0);

  // The stalled application heard Orch.Delayed at the surviving sink.
  EXPECT_GT(w.sink1->stats().delayed_indications, 0);

  // Playback continues across the outage and regulation keeps ticking.
  w.p->run_until(10 * kSecond);
  EXPECT_GT(w.sink1->stats().frames_rendered, frames_before);
  EXPECT_GT(w.surviving_intervals(), intervals_mid);
}

TEST(Failover, PartitionedOrchestratorDetectedByMissedReports) {
  // The node stays up (the liveness oracle keeps saying "alive"), but the
  // partition starves the agent of regulate reports — the protocol-level
  // heartbeat — which must trigger the failover on its own.  A longer
  // agent_dead_after lets the transport-liveness layer prune the dead VCs
  // from the group first, so the re-election sees only the survivor.
  FailoverWorld w({200 * kMillisecond, 2 * kSecond});
  w.p->run_until(5 * kSecond);
  w.p->network().set_link_up(w.star.hub->id, w.wsC->id, false);
  w.p->run_until(12 * kSecond);

  EXPECT_EQ(w.supervisor->failovers(), 1);
  EXPECT_FALSE(w.supervisor->orphaned());
  ASSERT_NE(w.supervisor->session(), nullptr);
  EXPECT_EQ(w.supervisor->session()->orchestrating_node(), w.wsB->id);
  EXPECT_GT(w.surviving_intervals(), 0);
}

TEST(Failover, PartitionHealFencedStaleOrchestratorSelfRetires) {
  // The orchestrating node is isolated — alive, protocol state intact.  A
  // successor is elected at a bumped epoch while the old agent free-runs.
  // When the partition heals, the old agent's first regulate must bounce
  // off the endpoints' epoch fence, never reach the data path, and drive
  // the old agent into self-retirement.  This is the regression test for
  // the fencing layer: with set_fencing_enabled(false) (next test) the
  // same schedule produces an observable split brain.
  FailoverWorld w({200 * kMillisecond, 2 * kSecond});
  auto& registry = obs::Registry::global();
  auto& rejected =
      registry.counter("orch.stale_epoch_rejected", {{"node", std::to_string(w.wsB->id)}});
  auto& applied =
      registry.counter("orch.stale_target_applied", {{"node", std::to_string(w.wsB->id)}});
  auto& superseded =
      registry.counter("orch.superseded", {{"node", std::to_string(w.wsC->id)}});
  const auto rejected_before = rejected.value();
  const auto applied_before = applied.value();
  const auto superseded_before = superseded.value();

  w.p->run_until(5 * kSecond);
  w.p->network().set_node_isolated(w.wsC->id, true);
  w.p->run_until(10 * kSecond);

  // Mid-partition: successor elected at epoch 2, the partitioned
  // predecessor held (not destroyed — it is alive on the far side).
  EXPECT_EQ(w.supervisor->failovers(), 1);
  EXPECT_FALSE(w.supervisor->orphaned());
  ASSERT_NE(w.supervisor->session(), nullptr);
  EXPECT_EQ(w.supervisor->session()->orchestrating_node(), w.wsB->id);
  EXPECT_EQ(w.supervisor->session()->agent().epoch(), 2u);
  EXPECT_EQ(w.supervisor->superseded_count(), 1u);

  w.p->network().set_node_isolated(w.wsC->id, false);
  w.p->run_until(13 * kSecond);

  // Post-heal: the stale orchestrator was nacked, applied nothing, and
  // self-retired; the supervisor reaped the superseded session.
  EXPECT_GT(rejected.value(), rejected_before);
  EXPECT_EQ(applied.value(), applied_before);
  EXPECT_EQ(superseded.value(), superseded_before + 1);
  EXPECT_EQ(w.supervisor->superseded_count(), 0u);

  // Exactly one regulator owns the surviving VC at its sink: the new
  // orchestrating node, at the fence epoch.
  auto& sink_llo = w.p->host(w.wsB->id).llo;
  EXPECT_EQ(sink_llo.vc_regulator(w.s1->vc()), w.wsB->id);
  EXPECT_EQ(sink_llo.vc_epoch(w.s1->vc()), 2u);
  EXPECT_GT(w.surviving_intervals(), 0);
}

TEST(Failover, PartitionHealWithoutFencingShowsSplitBrain) {
  // Same schedule with the fence disabled: after the heal the stale
  // orchestrator's targets land beside the successor's — two regulators
  // steering one VC, which the stale-applied counter makes observable.
  FailoverWorld w({200 * kMillisecond, 2 * kSecond});
  for (auto* h : {w.star.hub, w.srv1, w.wsB, w.wsC, w.srv2})
    w.p->host(h->id).llo.set_fencing_enabled(false);
  auto& applied = obs::Registry::global().counter(
      "orch.stale_target_applied", {{"node", std::to_string(w.wsB->id)}});
  const auto applied_before = applied.value();

  w.p->run_until(5 * kSecond);
  w.p->network().set_node_isolated(w.wsC->id, true);
  w.p->run_until(10 * kSecond);
  EXPECT_EQ(w.supervisor->failovers(), 1);
  w.p->network().set_node_isolated(w.wsC->id, false);
  w.p->run_until(13 * kSecond);

  EXPECT_GT(applied.value(), applied_before);
  // Never nacked, so the stale agent never learns it was superseded and
  // the supervisor can never retire it.
  EXPECT_EQ(w.supervisor->superseded_count(), 1u);
}

TEST(Failover, RebuildRetriesWithBackoffUntilEndpointReachable) {
  // The orchestrating node dies while the surviving stream's source is
  // briefly unreachable: the first rebuild's Sess.req fan-out is lost and
  // the op times out.  The supervisor must not give up — it retries with
  // backoff and succeeds once the source is reachable again.  The source's
  // isolation stays under the transport liveness budget (800 ms) so the
  // surviving VC itself is never torn down.
  FailoverWorld w;
  w.p->host(w.wsB->id).llo.set_op_timeout(500 * kMillisecond);
  w.p->run_until(5 * kSecond);

  sim::ChaosEngine engine(w.p->scheduler(), w.p->chaos_target());
  sim::ChaosPlan plan;
  plan.isolate(5 * kSecond - 50 * kMillisecond, w.srv1->id, 700 * kMillisecond);
  plan.crash(5 * kSecond + kMillisecond, w.wsC->id);
  engine.arm(plan);
  w.p->run_until(12 * kSecond);

  EXPECT_EQ(engine.injected(), 3);  // isolate + heal + crash
  EXPECT_EQ(w.supervisor->failovers(), 1);
  EXPECT_GE(w.supervisor->rebuild_retries(), 1);
  EXPECT_FALSE(w.supervisor->orphaned());
  ASSERT_NE(w.supervisor->session(), nullptr);
  EXPECT_EQ(w.supervisor->session()->orchestrating_node(), w.wsB->id);
  EXPECT_GT(w.surviving_intervals(), 0);
}

TEST(Failover, OrphansWhenNoStreamSurvives) {
  FailoverWorld w;
  w.p->run_until(5 * kSecond);

  net::NodeId new_node = w.wsB->id;  // sentinel: must be overwritten
  w.supervisor->set_on_failover(
      [&](net::NodeId, net::NodeId n) { new_node = n; });

  // srv1 + wsC dead kills an endpoint of every stream: nothing survives.
  w.p->crash_node(w.wsC->id);
  w.p->crash_node(w.srv1->id);
  w.p->run_until(8 * kSecond);

  EXPECT_EQ(w.supervisor->failovers(), 0);
  EXPECT_TRUE(w.supervisor->orphaned());
  EXPECT_EQ(new_node, net::kInvalidNode);
}

// ====================================================================
// Gilbert–Elliott burst loss under a full orchestrated session
// ====================================================================

TEST(BurstLoss, OrchestratedSessionSurvivesGilbertElliottBursts) {
  FailoverWorld w;
  w.p->run_until(5 * kSecond);
  const auto frames_before = w.sink2->stats().frames_rendered;
  const auto intervals_before = w.surviving_intervals();

  // Switch the inbound path to the orchestrating node to a bursty
  // Gilbert–Elliott channel: ~7% stationary loss arriving in clumps
  // (mean bad-state run of 4 packets at 80% loss).
  net::Link* lossy = w.p->network().link(w.star.hub->id, w.wsC->id);
  ASSERT_NE(lossy, nullptr);
  lossy->set_burst_loss(0.02, 0.25, 0.8);
  w.p->run_until(15 * kSecond);

  EXPECT_GT(lossy->stats().dropped_loss, 0);
  // The session rides out the bursts: no failover, no orphaning, delivery
  // and regulation both keep advancing.
  EXPECT_EQ(w.supervisor->failovers(), 0);
  EXPECT_FALSE(w.supervisor->orphaned());
  EXPECT_GT(w.sink2->stats().frames_rendered, frames_before);
  EXPECT_GT(w.surviving_intervals(), intervals_before + 20);
}

// ====================================================================
// Failover fleet: detection cost indexed by orchestrating node
// ====================================================================

/// Six single-stream sessions split across two sink workstations (the
/// orchestrating nodes): the fleet must watch them with O(nodes) work per
/// tick, and an outage must touch only the affected node's sessions.
struct FleetWorld {
  FleetWorld() : star(4, lan_link(), 17) {
    p = &star.platform;
    srv = star.leaves[0];
    ws_a = star.leaves[2];
    ws_b = star.leaves[3];
    server = std::make_unique<StoredMediaServer>(*p, *srv, "server");

    int connected = 0;
    for (int i = 0; i < 6; ++i) {
      platform::Host* ws = i < 3 ? ws_a : ws_b;
      TrackConfig track;
      track.track_id = static_cast<std::uint32_t>(i + 1);
      track.vbr.base_bytes = 512;
      const auto src = server->add_track(static_cast<net::Tsap>(100 + i), track);
      RenderConfig rc;
      rc.expect_track = track.track_id;
      sinks.push_back(std::make_unique<RenderingSink>(
          *p, *ws, static_cast<net::Tsap>(200 + i), rc));
      streams.push_back(
          std::make_unique<platform::Stream>(*p, *ws, "s" + std::to_string(i)));
      platform::VideoQos vq;
      vq.frames_per_second = 10;
      streams.back()->connect(src, {ws->id, static_cast<net::Tsap>(200 + i)},
                              platform::MediaQos{vq}, {},
                              [&](bool ok, auto) { connected += ok; });
    }
    p->run_until(kSecond);
    EXPECT_EQ(connected, 6);

    fleet = std::make_unique<orch::FailoverFleet>(
        p->scheduler(), p->orchestrator(),
        [this](net::NodeId n) { return &p->host(n).llo; },
        [this](net::NodeId n) { return p->node_alive(n); }, fc);
    OrchPolicy policy;
    policy.interval = 100 * kMillisecond;
    for (int i = 0; i < 6; ++i) {
      // Single source->sink stream: the sink-side tie-break elects the
      // workstation, so sessions bucket under ws_a and ws_b.
      auto session = p->orchestrator().orchestrate({streams[i]->orch_spec(2)}, policy,
                                                   nullptr);
      EXPECT_NE(session, nullptr);
      if (session == nullptr) continue;
      EXPECT_EQ(session->orchestrating_node(), (i < 3 ? ws_a : ws_b)->id);
      fleet->watch(std::move(session));
    }
    p->run_until(2 * kSecond);
  }

  orch::FailoverConfig fc;
  StarPlatform star;
  platform::Platform* p = nullptr;
  platform::Host* srv = nullptr;
  platform::Host* ws_a = nullptr;
  platform::Host* ws_b = nullptr;
  std::unique_ptr<StoredMediaServer> server;
  std::vector<std::unique_ptr<RenderingSink>> sinks;
  std::vector<std::unique_ptr<platform::Stream>> streams;
  std::unique_ptr<orch::FailoverFleet> fleet;
};

TEST(FailoverFleet, HealthyTicksCostZeroSessionPolls) {
  FleetWorld w;
  EXPECT_EQ(w.fleet->session_count(), 6u);
  EXPECT_EQ(w.fleet->indexed_nodes(), 2u);
  // Per tick the fleet probes the two orchestrating nodes (liveness +
  // rotating sentinel); with everything healthy no session is polled.
  EXPECT_EQ(w.fleet->last_tick_polls(), 0u);
  w.p->run_until(w.p->scheduler().now() + 3 * kSecond);
  EXPECT_EQ(w.fleet->last_tick_polls(), 0u);
  EXPECT_EQ(w.fleet->failovers(), 0);
  EXPECT_EQ(w.fleet->orphaned(), 0);
}

TEST(FailoverFleet, NodeDeathTouchesOnlyThatNodesSessions) {
  FleetWorld w;
  w.p->network().set_node_up(w.ws_a->id, false);
  w.p->run_until(w.p->scheduler().now() + 2 * kSecond);

  // ws_a's three sessions lose their only sink: detected and orphaned.
  // ws_b's three sessions must be untouched — detection fanned out to the
  // affected node only, and the poll gauge stays far below session count.
  EXPECT_EQ(w.fleet->orphaned(), 3);
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(w.fleet->supervisor(i).failovers(), 0) << "session " << i;
    EXPECT_FALSE(w.fleet->supervisor(i).orphaned()) << "session " << i;
  }
  EXPECT_LE(obs::Registry::global().gauge("orch.failover_poll_len").value(), 6.0);

  // After the outage drains, the dead node's bucket is gone and steady
  // state is back to zero session polls per tick.
  w.p->run_until(w.p->scheduler().now() + 2 * kSecond);
  EXPECT_EQ(w.fleet->indexed_nodes(), 1u);
  EXPECT_EQ(w.fleet->last_tick_polls(), 0u);
}

}  // namespace
}  // namespace cmtos::test
