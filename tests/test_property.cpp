// Property-style parameterized sweeps over the full stack: determinism,
// loss x error-control matrix, OSDU-size fragmentation boundaries, rate
// sweeps, and orchestration drift sweeps.

#include <gtest/gtest.h>

#include <tuple>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using transport::ErrorControl;
using transport::ProtocolProfile;

// --------------------------------------------------------------------
// Determinism: identical seeds -> bit-identical delivery traces.
// --------------------------------------------------------------------

struct TraceResult {
  std::vector<std::uint32_t> seqs;
  std::vector<Time> times;
  std::int64_t lost = 0;
};

TraceResult run_trace(std::uint64_t seed) {
  net::LinkConfig lossy = lan_link();
  lossy.loss_rate = 0.1;
  lossy.jitter = 2 * kMillisecond;
  PairPlatform w(lossy, seed);
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024);
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(200 * kMillisecond);
  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  TraceResult r;
  if (source == nullptr || sink == nullptr) return r;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 5; ++i) (void)source->submit(std::vector<std::uint8_t>(300, 1));
    w.platform.run_until(w.platform.scheduler().now() + 100 * kMillisecond);
    while (auto o = sink->receive()) {
      r.seqs.push_back(o->seq);
      r.times.push_back(w.platform.scheduler().now());
    }
  }
  r.lost = sink->stats().tpdus_lost;
  return r;
}

TEST(Determinism, SameSeedSameTrace) {
  const auto a = run_trace(1234);
  const auto b = run_trace(1234);
  ASSERT_FALSE(a.seqs.empty());
  EXPECT_EQ(a.seqs, b.seqs);
  EXPECT_EQ(a.times, b.times);
  EXPECT_EQ(a.lost, b.lost);
}

TEST(Determinism, DifferentSeedDifferentLossPattern) {
  const auto a = run_trace(1);
  const auto b = run_trace(2);
  // Loss patterns differ (times or seq sets diverge).
  EXPECT_TRUE(a.seqs != b.seqs || a.times != b.times);
}

// --------------------------------------------------------------------
// Loss rate x error control matrix.
// --------------------------------------------------------------------

class LossMatrix : public ::testing::TestWithParam<std::tuple<double, ErrorControl>> {};

TEST_P(LossMatrix, InOrderDeliveryAndRecoveryContract) {
  const auto [loss, ec] = GetParam();
  net::LinkConfig link = lan_link();
  link.loss_rate = loss;
  PairPlatform w(link, 31 + static_cast<std::uint64_t>(loss * 1000));
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 100.0, 1024);
  req.service_class.error_control = ec;
  req.buffer_osdus = 32;
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(3 * kSecond);
  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  ASSERT_NE(source, nullptr);

  constexpr int kCount = 150;
  int submitted = 0;
  std::vector<std::uint32_t> got;
  for (int burst = 0; burst < kCount / 10; ++burst) {
    for (int i = 0; i < 10; ++i) submitted += source->submit(std::vector<std::uint8_t>(400, 1));
    w.platform.run_until(w.platform.scheduler().now() + 150 * kMillisecond);
    while (auto o = sink->receive()) got.push_back(o->seq);
  }
  w.platform.run_until(w.platform.scheduler().now() + 3 * kSecond);
  while (auto o = sink->receive()) got.push_back(o->seq);

  // Invariant 1: strictly increasing delivery (boundaries + order).
  for (std::size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i], got[i - 1]);
  // Invariant 2: never deliver more than submitted.
  EXPECT_LE(got.size(), static_cast<std::size_t>(submitted));
  // Invariant 3: correction recovers nearly everything; detection-only
  // delivers roughly the survival rate.
  const double delivered_frac =
      static_cast<double>(got.size()) / static_cast<double>(submitted);
  if (wants_correction(ec)) {
    EXPECT_GE(delivered_frac, 0.93);
  } else {
    EXPECT_GE(delivered_frac, (1.0 - loss) - 0.12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossMatrix,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.08, 0.15),
                       ::testing::Values(ErrorControl::kNone, ErrorControl::kIndicate,
                                         ErrorControl::kCorrect,
                                         ErrorControl::kCorrectAndIndicate)));

// --------------------------------------------------------------------
// OSDU size sweep across fragmentation boundaries.
// --------------------------------------------------------------------

class OsduSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OsduSize, BoundariesPreservedByteExact) {
  const std::size_t size = GetParam();
  PairPlatform w;
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 20.0,
                           static_cast<std::int64_t>(size) + 16);
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(200 * kMillisecond);
  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  ASSERT_NE(source, nullptr);

  std::vector<std::uint8_t> data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  auto copy = data;
  ASSERT_TRUE(source->submit(std::move(copy)));
  w.platform.run_until(3 * kSecond);
  auto o = sink->receive();
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->data, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OsduSize,
                         ::testing::Values(0, 1, 100, 1399, 1400, 1401, 2800, 2801, 7000,
                                           14001, 65536));

// --------------------------------------------------------------------
// Contract rate sweep: delivered rate tracks the agreed rate.
// --------------------------------------------------------------------

class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, DeliveredRateMatchesContract) {
  const double rate = GetParam();
  PairPlatform w(lan_link(), 3);
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, rate, 1000);
  req.buffer_osdus = 32;
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(200 * kMillisecond);
  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  ASSERT_NE(source, nullptr);

  // Saturate with exactly max-size OSDUs; measure delivery over 4s.
  const Time t0 = w.platform.scheduler().now();
  std::int64_t delivered = 0;
  while (w.platform.scheduler().now() < t0 + 4 * kSecond) {
    while (source->submit(std::vector<std::uint8_t>(1000, 1))) {
    }
    w.platform.run_until(w.platform.scheduler().now() + 50 * kMillisecond);
    while (sink->receive()) ++delivered;
  }
  const double measured = static_cast<double>(delivered) / 4.0;
  EXPECT_NEAR(measured, rate, rate * 0.25 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep, ::testing::Values(5.0, 25.0, 50.0, 100.0, 200.0));

// --------------------------------------------------------------------
// Profile x loss: both profiles keep the in-order invariant.
// --------------------------------------------------------------------

class ProfileSweep
    : public ::testing::TestWithParam<std::tuple<ProtocolProfile, double>> {};

TEST_P(ProfileSweep, InOrderInvariantHolds) {
  const auto [profile, loss] = GetParam();
  net::LinkConfig link = lan_link();
  link.loss_rate = loss;
  PairPlatform w(link, 47);
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 50.0, 1024);
  req.service_class.profile = profile;
  req.service_class.error_control = ErrorControl::kCorrect;
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(3 * kSecond);
  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  ASSERT_NE(source, nullptr);

  std::vector<std::uint32_t> got;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 8; ++i) (void)source->submit(std::vector<std::uint8_t>(300, 1));
    w.platform.run_until(w.platform.scheduler().now() + 300 * kMillisecond);
    while (auto o = sink->receive()) got.push_back(o->seq);
  }
  ASSERT_GT(got.size(), 20u);
  for (std::size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i], got[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileSweep,
    ::testing::Combine(::testing::Values(ProtocolProfile::kRateBasedCm,
                                         ProtocolProfile::kWindowBased),
                       ::testing::Values(0.0, 0.05)));

// --------------------------------------------------------------------
// Orchestration drift sweep: bounded skew across drift magnitudes.
// --------------------------------------------------------------------

class DriftSweep : public ::testing::TestWithParam<double> {};

TEST_P(DriftSweep, SkewStaysWithinLipSyncThreshold) {
  // The paper's film scenario: video and soundtrack on *separate* storage
  // servers whose clocks drift in opposite directions (the transport rate
  // pacers run off those clocks), common sink workstation.
  const double drift_ppm = GetParam();
  platform::Platform p(808);
  auto& video_server = p.add_host("video-server", sim::LocalClock(0, drift_ppm / 2));
  auto& audio_server = p.add_host("audio-server", sim::LocalClock(0, -drift_ppm / 2));
  auto& ws = p.add_host("ws");
  p.network().add_link(video_server.id, ws.id, lan_link());
  p.network().add_link(audio_server.id, ws.id, lan_link());
  p.network().finalize_routes();

  media::StoredMediaServer vserver(p, video_server, "video-store");
  media::TrackConfig video;
  video.track_id = 1;
  video.auto_start = false;
  video.vbr.base_bytes = 2048;
  const auto vsrc = vserver.add_track(100, video);
  media::StoredMediaServer aserver(p, audio_server, "audio-store");
  media::TrackConfig audio;
  audio.track_id = 2;
  audio.auto_start = false;
  audio.vbr.base_bytes = 160;
  audio.vbr.gop = 0;
  const auto asrc = aserver.add_track(101, audio);

  media::RenderConfig vr;
  vr.expect_track = 1;
  media::RenderingSink vsink(p, ws, 200, vr);
  media::RenderConfig ar;
  ar.expect_track = 2;
  media::RenderingSink asink(p, ws, 201, ar);
  platform::Stream vstream(p, ws, "v"), astream(p, ws, "a");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  platform::AudioQos aq;
  aq.blocks_per_second = 50;
  vstream.connect(vsrc, {ws.id, 200}, vq, {}, nullptr);
  astream.connect(asrc, {ws.id, 201}, aq, {}, nullptr);
  p.run_until(500 * kMillisecond);
  ASSERT_TRUE(vstream.connected() && astream.connected());

  orch::OrchPolicy policy;
  policy.interval = 100 * kMillisecond;
  auto session = p.orchestrator().orchestrate({vstream.orch_spec(2), astream.orch_spec(2)},
                                              policy, nullptr);
  ASSERT_NE(session, nullptr);
  p.run_until(kSecond);
  session->prime(false, nullptr);
  p.run_until(2 * kSecond);
  session->start(nullptr);
  p.run_until(2500 * kMillisecond);

  media::SyncMeter meter(p.scheduler());
  meter.add_stream("video", &vsink);
  meter.add_stream("audio", &asink);
  meter.begin(100 * kMillisecond);
  p.run_until(17 * kSecond);

  EXPECT_LT(meter.max_abs_skew_seconds(), 0.085)
      << "drift " << drift_ppm << " ppm broke lip sync";
}

INSTANTIATE_TEST_SUITE_P(Drifts, DriftSweep,
                         ::testing::Values(0.0, 100.0, 500.0, 2000.0, 10000.0, -10000.0));

}  // namespace
}  // namespace cmtos::test
