// End-to-end smoke test: stored server -> transport -> rendering sink over
// the full platform stack, with and without orchestration.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;

TEST(IntegrationSmoke, StoredVideoPlaysEndToEnd) {
  PairPlatform world;
  auto& p = world.platform;

  StoredMediaServer server(p, *world.a, "server");
  TrackConfig track;
  track.track_id = 7;
  track.vbr.base_bytes = 4096;
  const auto src = server.add_track(100, track);

  RenderConfig rc;
  rc.expect_track = 7;
  RenderingSink sink(p, *world.b, 200, rc);

  platform::Stream stream(p, *world.a, "video");
  bool connected = false;
  transport::QosParams agreed;
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {world.b->id, 200}, vq, {}, [&](bool ok, transport::QosParams q) {
    connected = ok;
    agreed = q;
  });

  p.run_until(4 * kSecond);

  ASSERT_TRUE(connected);
  EXPECT_NEAR(agreed.osdu_rate, 25.0, 0.01);
  // ~3.5 seconds of play-out at 25 fps minus pipeline fill.
  EXPECT_GT(sink.stats().frames_rendered, 60);
  EXPECT_EQ(sink.stats().integrity_failures, 0);
  // Frames arrive in order, no gaps on a clean link.
  const auto& recs = sink.records();
  ASSERT_FALSE(recs.empty());
  for (std::size_t i = 1; i < recs.size(); ++i)
    EXPECT_EQ(recs[i].seq, recs[i - 1].seq + 1);
}

TEST(IntegrationSmoke, OrchestratedLipSyncPlayout) {
  // Film play-out: video and audio tracks from one server to one
  // workstation whose clock drifts; orchestration holds them together.
  PairPlatform world(lan_link(), 42, sim::LocalClock{}, sim::LocalClock{0, 300.0});
  auto& p = world.platform;

  StoredMediaServer server(p, *world.a, "film-server");
  TrackConfig video;
  video.track_id = 1;
  video.auto_start = false;
  video.vbr.base_bytes = 4096;
  const auto video_src = server.add_track(100, video);
  TrackConfig audio;
  audio.track_id = 2;
  audio.auto_start = false;
  audio.vbr.base_bytes = 160;
  audio.vbr.gop = 0;
  const auto audio_src = server.add_track(101, audio);

  RenderConfig vr;
  vr.expect_track = 1;
  RenderingSink video_sink(p, *world.b, 200, vr);
  RenderConfig ar;
  ar.expect_track = 2;
  RenderingSink audio_sink(p, *world.b, 201, ar);

  platform::Stream vstream(p, *world.b, "film-video");
  platform::Stream astream(p, *world.b, "film-audio");
  int connected = 0;
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  platform::AudioQos aq;
  aq.blocks_per_second = 50;  // 2 sound blocks per frame
  vstream.connect(video_src, {world.b->id, 200}, vq, {}, [&](bool ok, auto) { connected += ok; });
  astream.connect(audio_src, {world.b->id, 201}, aq, {}, [&](bool ok, auto) { connected += ok; });
  p.run_until(kSecond);
  ASSERT_EQ(connected, 2);

  orch::OrchPolicy policy;
  policy.interval = 100 * kMillisecond;
  auto session = p.orchestrator().orchestrate(
      {vstream.orch_spec(2), astream.orch_spec(2)}, policy, nullptr);
  ASSERT_NE(session, nullptr);
  // The common node is the workstation (both sinks live there).
  EXPECT_EQ(session->orchestrating_node(), world.b->id);

  bool primed = false, started = false;
  p.run_until(1500 * kMillisecond);
  session->prime(false, [&](bool ok, auto) { primed = ok; });
  p.run_until(2500 * kMillisecond);
  ASSERT_TRUE(primed);
  session->start([&](bool ok, auto) { started = ok; });
  p.run_until(3 * kSecond);
  ASSERT_TRUE(started);

  media::SyncMeter meter(p.scheduler());
  meter.add_stream("video", &video_sink);
  meter.add_stream("audio", &audio_sink);
  meter.begin(100 * kMillisecond);

  p.run_until(13 * kSecond);

  EXPECT_GT(video_sink.stats().frames_rendered, 200);
  EXPECT_GT(audio_sink.stats().frames_rendered, 400);
  EXPECT_EQ(video_sink.stats().integrity_failures, 0);
  EXPECT_EQ(audio_sink.stats().integrity_failures, 0);
  // Lip sync held within the perceptual threshold despite the 300 ppm
  // clock drift at the sink host.
  EXPECT_LT(meter.max_abs_skew_seconds(), 0.085);
}

}  // namespace
}  // namespace cmtos::test
