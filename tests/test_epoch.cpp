// Epoch fencing at the endpoint LLO (orch/regulation_engine).
//
// Drives raw OPDUs over the wire at an endpoint and checks the fence table:
// which OPDU types are rejected when stale, that the fence ratchets up to
// the highest epoch seen per VC, and that Sess.rel is deliberately exempt
// (partition-heal reconciliation depends on the *new* orchestrator purging
// the old session's attachments without knowing the old epoch).  The
// split-brain integration behaviour — nack, self-retirement, supervisor
// reaping — lives in test_chaos.cpp; this file pins the per-OPDU contract.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "obs/metrics.h"
#include "orch/opdu.h"

namespace cmtos::test {
namespace {

using orch::Opdu;
using orch::OpduType;

/// a plays a (possibly stale) orchestrating node, b is the endpoint under
/// test.  OPDUs are injected as wire packets so they traverse the same
/// dispatch path as production traffic.
struct EpochWorld {
  PairPlatform w;

  void inject(OpduType type, std::uint32_t epoch, transport::VcId vc = 99) {
    Opdu o;
    o.type = type;
    o.session = 7;
    o.vc = vc;
    o.orch_node = w.a->id;
    o.epoch = epoch;
    net::Packet pkt;
    pkt.src = w.a->id;
    pkt.dst = w.b->id;
    pkt.proto = net::Proto::kOrch;
    pkt.priority = net::Priority::kControl;
    pkt.payload = o.encode();
    w.platform.network().send(std::move(pkt));
    w.platform.run_until(w.platform.scheduler().now() + 10 * kMillisecond);
  }

  /// Monotonic global counter — tests diff it around injections.
  std::int64_t rejected() {
    return obs::Registry::global()
        .counter("orch.stale_epoch_rejected", {{"node", std::to_string(w.b->id)}})
        .value();
  }

  std::uint32_t fence(transport::VcId vc = 99) { return w.b->llo.vc_epoch(vc); }
};

TEST(EpochFence, EveryRegulationOpduTypeRejectsStaleEpochs) {
  EpochWorld e;
  e.inject(OpduType::kSessReq, 5);  // adopt the fence
  ASSERT_EQ(e.fence(), 5u);

  const OpduType fenced[] = {
      OpduType::kSessReq, OpduType::kAdd,          OpduType::kRemove,
      OpduType::kPrime,   OpduType::kStart,        OpduType::kStop,
      OpduType::kRegulateSink, OpduType::kRegulateSrc, OpduType::kDrop,
      OpduType::kEventReg, OpduType::kDelayed,
  };
  for (OpduType type : fenced) {
    const std::int64_t before = e.rejected();
    e.inject(type, 3);
    EXPECT_EQ(e.rejected(), before + 1)
        << "OPDU type " << static_cast<int>(type) << " not fenced";
    EXPECT_EQ(e.fence(), 5u);  // a stale OPDU never moves the fence
  }
}

TEST(EpochFence, CurrentEpochPassesUnrejected) {
  EpochWorld e;
  e.inject(OpduType::kSessReq, 5);
  const std::int64_t before = e.rejected();
  e.inject(OpduType::kRegulateSink, 5);
  EXPECT_EQ(e.rejected(), before);
}

TEST(EpochFence, HigherEpochRatchetsTheFence) {
  EpochWorld e;
  e.inject(OpduType::kSessReq, 5);
  const std::int64_t before = e.rejected();
  e.inject(OpduType::kRegulateSink, 6);  // successor takes over
  EXPECT_EQ(e.rejected(), before);
  EXPECT_EQ(e.fence(), 6u);
  e.inject(OpduType::kRegulateSink, 5);  // predecessor is now stale
  EXPECT_EQ(e.rejected(), before + 1);
}

TEST(EpochFence, FenceIsPerVc) {
  EpochWorld e;
  e.inject(OpduType::kSessReq, 5, 99);
  const std::int64_t before = e.rejected();
  e.inject(OpduType::kRegulateSink, 2, 98);  // other VC: 2 is its high water
  EXPECT_EQ(e.rejected(), before);
  EXPECT_EQ(e.fence(98), 2u);
  EXPECT_EQ(e.fence(99), 5u);
}

TEST(EpochFence, SessRelIsExemptFromFencing) {
  EpochWorld e;
  e.inject(OpduType::kSessReq, 5);
  const std::int64_t before = e.rejected();
  e.inject(OpduType::kSessRel, 3);  // stale release must still be honoured
  EXPECT_EQ(e.rejected(), before);
}

TEST(EpochFence, DisabledFencingAppliesStaleOpdusAndCounts) {
  EpochWorld e;
  e.w.b->llo.set_fencing_enabled(false);
  e.inject(OpduType::kSessReq, 5);
  const std::int64_t rejected_before = e.rejected();
  const std::int64_t applied_before =
      obs::Registry::global()
          .counter("orch.stale_target_applied", {{"node", std::to_string(e.w.b->id)}})
          .value();
  e.inject(OpduType::kRegulateSink, 3);
  EXPECT_EQ(e.rejected(), rejected_before);  // nothing rejected...
  EXPECT_EQ(obs::Registry::global()
                .counter("orch.stale_target_applied", {{"node", std::to_string(e.w.b->id)}})
                .value(),
            applied_before + 1);  // ...and the split brain is observable
}

}  // namespace
}  // namespace cmtos::test
