// HLO tests: orchestrating-node selection (Fig 5), the agent's interval
// feedback loop (Fig 6), drift correction under skewed clocks, the
// §6.3.1.2 blocking-time diagnosis, escalation policies, and stream
// add/remove.

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::SyncMeter;
using media::TrackConfig;
using orch::MissDiagnosis;
using orch::OrchPolicy;
using orch::OrchStreamSpec;
using orch::OrchVcInfo;

OrchStreamSpec spec(transport::VcId vc, net::NodeId src, net::NodeId sink, double rate) {
  OrchStreamSpec s;
  s.vc = {vc, src, sink};
  s.osdu_rate = rate;
  return s;
}

TEST(ChooseNode, CommonSinkWins) {
  // Film example: two servers -> one workstation.
  auto node = orch::Orchestrator::choose_orchestrating_node(
      {spec(1, 10, 30, 25), spec(2, 20, 30, 50)});
  EXPECT_EQ(node, 30u);
}

TEST(ChooseNode, CommonSourceWins) {
  // Language lab: one server -> many workstations.
  auto node = orch::Orchestrator::choose_orchestrating_node(
      {spec(1, 10, 31, 50), spec(2, 10, 32, 50), spec(3, 10, 33, 50)});
  EXPECT_EQ(node, 10u);
}

TEST(ChooseNode, TieBreaksTowardSink) {
  auto node = orch::Orchestrator::choose_orchestrating_node(
      {spec(1, 10, 20, 25), spec(2, 10, 20, 50)});
  EXPECT_EQ(node, 20u);
}

TEST(ChooseNode, NoCommonNodeFails) {
  auto node = orch::Orchestrator::choose_orchestrating_node(
      {spec(1, 10, 20, 25), spec(2, 30, 40, 25)});
  EXPECT_EQ(node, net::kInvalidNode);
}

TEST(ChooseNode, PartialOverlapStillRequiresFullCommonality) {
  // Node 20 touches VCs 1,2 but not 3.
  auto node = orch::Orchestrator::choose_orchestrating_node(
      {spec(1, 10, 20, 25), spec(2, 20, 30, 25), spec(3, 30, 40, 25)});
  EXPECT_EQ(node, net::kInvalidNode);
}

/// Full lip-sync world, the paper's film scenario: video and audio tracks
/// on *separate* storage servers whose clocks drift in opposite directions
/// (+/- half the differential), rendered on one workstation.  Frame sizes
/// match the negotiated maxima so the OSDU-paced transport rate follows
/// each server's clock exactly, and the receive rings are shallow (6
/// OSDUs) so drift surfaces within test horizons instead of being masked
/// by buffering.
struct LipSyncWorld {
  explicit LipSyncWorld(double differential_drift_ppm = 0.0,
                        Duration interval = 100 * kMillisecond, std::uint32_t max_drop = 2)
      : platform(4242) {
    server_host = &platform.add_host("video-server",
                                     sim::LocalClock(0, differential_drift_ppm / 2));
    audio_server_host = &platform.add_host("audio-server",
                                           sim::LocalClock(0, -differential_drift_ppm / 2));
    sink_host = &platform.add_host("ws");
    platform.network().add_link(server_host->id, sink_host->id, lan_link());
    platform.network().add_link(audio_server_host->id, sink_host->id, lan_link());
    platform.network().finalize_routes();

    platform::VideoQos vq;
    vq.frames_per_second = 25;
    platform::AudioQos aq;
    aq.blocks_per_second = 50;

    server = std::make_unique<StoredMediaServer>(platform, *server_host, "film-video");
    TrackConfig video;
    video.track_id = 1;
    video.auto_start = false;
    video.vbr.base_bytes = vq.frame_bytes();
    video.vbr.gop = 0;
    video.vbr.wobble = 0;
    video_src = server->add_track(100, video);
    audio_server =
        std::make_unique<StoredMediaServer>(platform, *audio_server_host, "film-audio");
    TrackConfig audio;
    audio.track_id = 2;
    audio.auto_start = false;
    audio.vbr.base_bytes = aq.block_bytes();
    audio.vbr.gop = 0;
    audio.vbr.wobble = 0;
    audio_src = audio_server->add_track(101, audio);

    RenderConfig vr;
    vr.expect_track = 1;
    video_sink = std::make_unique<RenderingSink>(platform, *sink_host, 200, vr);
    RenderConfig ar;
    ar.expect_track = 2;
    audio_sink = std::make_unique<RenderingSink>(platform, *sink_host, 201, ar);

    vstream = std::make_unique<platform::Stream>(platform, *sink_host, "v");
    astream = std::make_unique<platform::Stream>(platform, *sink_host, "a");
    vstream->set_buffer_osdus(6);
    astream->set_buffer_osdus(6);
    vstream->connect(video_src, {sink_host->id, 200}, vq, {}, nullptr);
    astream->connect(audio_src, {sink_host->id, 201}, aq, {}, nullptr);
    platform.run_until(500 * kMillisecond);
    EXPECT_TRUE(vstream->connected());
    EXPECT_TRUE(astream->connected());

    OrchPolicy policy;
    policy.interval = interval;
    session = platform.orchestrator().orchestrate(
        {vstream->orch_spec(max_drop), astream->orch_spec(max_drop)}, policy,
        [&](bool ok, orch::OrchReason) { established = ok; });
    platform.run_until(kSecond);
    EXPECT_TRUE(established);
  }

  /// Primes, starts and plays for `dur`; returns max |skew|.
  double play_and_measure(Duration dur) {
    bool primed = false, started = false;
    session->prime(false, [&](bool ok, auto) { primed = ok; });
    platform.run_until(2 * kSecond);
    EXPECT_TRUE(primed);
    session->start([&](bool ok, auto) { started = ok; });
    platform.run_until(2500 * kMillisecond);
    EXPECT_TRUE(started);
    meter = std::make_unique<SyncMeter>(platform.scheduler());
    meter->add_stream("video", video_sink.get());
    meter->add_stream("audio", audio_sink.get());
    meter->begin(100 * kMillisecond);
    platform.run_until(2500 * kMillisecond + dur);
    return meter->max_abs_skew_seconds();
  }

  platform::Platform platform;
  platform::Host* server_host = nullptr;
  platform::Host* audio_server_host = nullptr;
  platform::Host* sink_host = nullptr;
  std::unique_ptr<StoredMediaServer> server;
  std::unique_ptr<StoredMediaServer> audio_server;
  std::unique_ptr<RenderingSink> video_sink, audio_sink;
  std::unique_ptr<platform::Stream> vstream, astream;
  std::unique_ptr<orch::OrchSession> session;
  std::unique_ptr<SyncMeter> meter;
  net::NetAddress video_src, audio_src;
  bool established = false;
};

TEST(HloAgent, HoldsLipSyncUnderClockDrift) {
  LipSyncWorld w(20000.0);  // 2% differential drift: surfaces fast in a 20 s test
  const double skew = w.play_and_measure(20 * kSecond);
  EXPECT_LT(skew, 0.085);  // perceptual threshold + regulation granularity (1 frame each way)
  // The loop is actually running.
  const auto& st = w.session->agent().status();
  ASSERT_EQ(st.size(), 2u);
  for (const auto& [vc, s] : st) EXPECT_GT(s.intervals, 100);
}

TEST(HloAgent, RegulationActuallyActuates) {
  // With drift, the agent must issue holds or drops; verify the machinery
  // moved (drops happened or starvation events from holds).
  LipSyncWorld w(20000.0);
  (void)w.play_and_measure(20 * kSecond);
  std::int64_t drops = 0;
  for (const auto& [vc, s] : w.session->agent().status()) drops += s.drops_total;
  const auto holds =
      w.video_sink->stats().starvation_events + w.audio_sink->stats().starvation_events;
  EXPECT_GT(drops + holds, 0);
}

TEST(HloAgent, InterStreamRatioMaintained) {
  LipSyncWorld w(2000.0);
  (void)w.play_and_measure(10 * kSecond);
  // 2 audio blocks per video frame.
  const double vframes = static_cast<double>(w.video_sink->stats().frames_rendered);
  const double ablocks = static_cast<double>(w.audio_sink->stats().frames_rendered);
  EXPECT_NEAR(ablocks / vframes, 2.0, 0.1);
}

TEST(HloAgent, StopSuspendsRegulation) {
  LipSyncWorld w(0.0);
  (void)w.play_and_measure(3 * kSecond);
  bool stopped = false;
  w.session->stop([&](bool ok, auto) { stopped = ok; });
  w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);
  ASSERT_TRUE(stopped);
  EXPECT_FALSE(w.session->agent().running());
  const auto intervals_at_stop = w.session->agent().status().begin()->second.intervals;
  w.platform.run_until(w.platform.scheduler().now() + 2 * kSecond);
  EXPECT_EQ(w.session->agent().status().begin()->second.intervals, intervals_at_stop);
}

TEST(HloAgent, DiagnosesSlowSourceApplication) {
  // The video producer is artificially paced at 10 fps against a 25 fps
  // contract: the source application thread is the bottleneck, and the
  // agent must diagnose kSourceAppSlow and issue Orch.Delayed.
  platform::Platform p(99);
  auto& server_host = p.add_host("server");
  auto& ws = p.add_host("ws");
  p.network().add_link(server_host.id, ws.id, lan_link());
  p.network().finalize_routes();

  StoredMediaServer server(p, server_host, "slow");
  TrackConfig t;
  t.track_id = 1;
  t.auto_start = false;
  t.paced_rate = 10.0;  // too slow on purpose
  t.vbr.base_bytes = 1024;
  const auto src = server.add_track(100, t);
  RenderConfig rc;
  rc.expect_track = 1;
  RenderingSink sink(p, ws, 200, rc);
  platform::Stream stream(p, ws, "v");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {ws.id, 200}, vq, {}, nullptr);
  p.run_until(500 * kMillisecond);
  ASSERT_TRUE(stream.connected());

  OrchPolicy policy;
  policy.interval = 200 * kMillisecond;
  policy.fail_threshold = 3;
  auto session = p.orchestrator().orchestrate({stream.orch_spec(0)}, policy, nullptr);
  ASSERT_NE(session, nullptr);
  p.run_until(kSecond);

  std::vector<MissDiagnosis> escalations;
  session->agent().set_escalation_callback(
      [&](transport::VcId, MissDiagnosis d, const orch::RegulateIndication&) {
        escalations.push_back(d);
      });

  // Prime will not complete (the slow source cannot fill the ring fast)
  // — start without priming; regulation begins immediately.
  session->start(nullptr);
  p.run_until(10 * kSecond);

  ASSERT_FALSE(escalations.empty());
  EXPECT_EQ(escalations.front(), MissDiagnosis::kSourceAppSlow);
  EXPECT_GT(server.stats(100).delayed_indications, 0);
}

TEST(HloAgent, DiagnosesTransportBottleneck) {
  // Thin link: admission degrades the video contract to ~12 fps, but the
  // sink renders by its configured 25 fps clock and the agent's rate spec
  // claims 25 — the transport is the diagnosed bottleneck.
  platform::Platform p(17);
  auto& server_host = p.add_host("server");
  auto& ws = p.add_host("ws");
  net::LinkConfig thin = lan_link();
  thin.bandwidth_bps = 1'000'000;
  p.network().add_link(server_host.id, ws.id, thin);
  p.network().finalize_routes();

  StoredMediaServer server(p, server_host, "s");
  TrackConfig t;
  t.track_id = 1;
  t.auto_start = false;
  t.vbr.base_bytes = 4096;
  const auto src = server.add_track(100, t);
  RenderConfig rc;
  rc.expect_track = 1;
  rc.rate = 25.0;  // render clock runs at full speed regardless
  RenderingSink sink(p, ws, 200, rc);
  platform::Stream stream(p, ws, "v");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {ws.id, 200}, vq, {}, nullptr);
  p.run_until(500 * kMillisecond);
  ASSERT_TRUE(stream.connected());
  ASSERT_LT(stream.agreed_qos().osdu_rate, 25.0);  // admission degraded it

  OrchPolicy policy;
  // A long interval makes the per-interval shortfall ((25-17) * 0.5 = 4
  // OSDUs) clearly exceed the 2-OSDU tolerance.
  policy.interval = 500 * kMillisecond;
  policy.fail_threshold = 3;
  policy.on_failure = OrchPolicy::OnFailure::kNotifyOnly;
  auto spec25 = stream.orch_spec(0);
  spec25.osdu_rate = 25.0;  // the application *wants* 25
  auto session = p.orchestrator().orchestrate({spec25}, policy, nullptr);
  p.run_until(kSecond);

  std::vector<MissDiagnosis> escalations;
  session->agent().set_escalation_callback(
      [&](transport::VcId, MissDiagnosis d, const orch::RegulateIndication&) {
        escalations.push_back(d);
      });
  session->prime(false, nullptr);
  p.run_until(3 * kSecond);
  session->start(nullptr);
  p.run_until(12 * kSecond);

  ASSERT_FALSE(escalations.empty());
  EXPECT_EQ(escalations.front(), MissDiagnosis::kTransportTooSlow);
}

TEST(HloAgent, SlowestStreamPacingFollowsLaggard) {
  // Audio cannot drop (max_drop 0) and its producer is paced slow; with
  // kSlowestStream pacing the video aligns to audio instead of running
  // ahead.
  platform::Platform p(55);
  auto& server_host = p.add_host("server");
  auto& ws = p.add_host("ws");
  p.network().add_link(server_host.id, ws.id, lan_link());
  p.network().finalize_routes();

  StoredMediaServer server(p, server_host, "s");
  TrackConfig video;
  video.track_id = 1;
  video.auto_start = false;
  video.vbr.base_bytes = 1024;
  const auto vsrc = server.add_track(100, video);
  TrackConfig audio;
  audio.track_id = 2;
  audio.auto_start = false;
  audio.paced_rate = 40.0;  // should be 50: runs 20% slow
  audio.vbr.base_bytes = 160;
  audio.vbr.gop = 0;
  const auto asrc = server.add_track(101, audio);

  RenderConfig vr;
  vr.expect_track = 1;
  RenderingSink vsink(p, ws, 200, vr);
  RenderConfig ar;
  ar.expect_track = 2;
  RenderingSink asink(p, ws, 201, ar);
  platform::Stream vstream(p, ws, "v"), astream(p, ws, "a");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  platform::AudioQos aq;
  aq.blocks_per_second = 50;
  vstream.connect(vsrc, {ws.id, 200}, vq, {}, nullptr);
  astream.connect(asrc, {ws.id, 201}, aq, {}, nullptr);
  p.run_until(500 * kMillisecond);

  OrchPolicy policy;
  policy.interval = 100 * kMillisecond;
  policy.pacing = OrchPolicy::Pacing::kSlowestStream;
  auto session =
      p.orchestrator().orchestrate({vstream.orch_spec(3), astream.orch_spec(0)}, policy, nullptr);
  p.run_until(kSecond);
  session->prime(false, nullptr);
  p.run_until(4 * kSecond);
  session->start(nullptr);
  p.run_until(5 * kSecond);

  SyncMeter meter(p.scheduler());
  meter.add_stream("video", &vsink);
  meter.add_stream("audio", &asink);
  meter.begin(100 * kMillisecond);
  p.run_until(25 * kSecond);

  // Audio media position advances at 40/50 = 0.8x real time; video must
  // track it, not the wall clock.
  EXPECT_LT(meter.max_abs_skew_seconds(), 0.25);
  const double vpos = vsink.position_seconds();
  EXPECT_LT(vpos, 0.9 * 20.0);  // clearly slower than real time
}

TEST(HloAgent, AddAndRemoveStreamMidSession) {
  LipSyncWorld w(0.0);
  (void)w.play_and_measure(3 * kSecond);

  // Add a caption track mid-play.
  media::TrackConfig cap;
  cap.track_id = 9;
  cap.auto_start = true;
  cap.vbr.base_bytes = 128;
  cap.vbr.gop = 0;
  const auto cap_src = w.server->add_track(102, cap);
  RenderConfig cr;
  cr.expect_track = 9;
  RenderingSink cap_sink(w.platform, *w.sink_host, 202, cr);
  platform::Stream cstream(w.platform, *w.sink_host, "captions");
  platform::TextQos tq;
  tq.units_per_second = 2.0;
  cstream.connect(cap_src, {w.sink_host->id, 202}, tq, {}, nullptr);
  w.platform.run_until(w.platform.scheduler().now() + 500 * kMillisecond);
  ASSERT_TRUE(cstream.connected());

  bool added = false;
  w.session->agent().add_stream(cstream.orch_spec(0), [&](bool ok, auto) { added = ok; });
  w.platform.run_until(w.platform.scheduler().now() + kSecond);
  EXPECT_TRUE(added);
  EXPECT_EQ(w.session->agent().status().size(), 3u);

  bool removed = false;
  w.session->agent().remove_stream(cstream.orch_spec().vc.vc,
                                   [&](bool ok, auto) { removed = ok; });
  w.platform.run_until(w.platform.scheduler().now() + kSecond);
  EXPECT_TRUE(removed);
  EXPECT_EQ(w.session->agent().status().size(), 2u);
}

TEST(Orchestrator, NoCommonNodeReturnsNull) {
  platform::Platform p;
  p.add_host("a");
  p.add_host("b");
  p.network().finalize_routes();
  auto s = p.orchestrator().orchestrate({spec(1, 0, 1, 25), spec(2, 2, 3, 25)}, {}, nullptr);
  EXPECT_EQ(s, nullptr);
}

}  // namespace
}  // namespace cmtos::test
