// Steady-state allocation discipline for the zero-copy media path
// (DESIGN.md "Two-world data plane").
//
// A paced 64 KiB stream is pumped over several regulation intervals.
// After a warmup window (pool magazines fill, rings and retain maps reach
// their high-water marks) the data plane must run out of recycled frames:
// the FramePool miss counter must stay at zero, and the per-OSDU heap
// allocation count must be flat from window to window.  A reintroduced
// per-fragment copy or per-packet buffer shows up here as a step in the
// allocs-per-OSDU curve long before it shows up in a wall-clock bench.
//
// This file replaces global operator new (alloc_hooks.h), so it must stay
// a single-TU binary of its own.

#include "alloc_hooks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.h"
#include "media/content.h"
#include "util/frame_pool.h"

namespace cmtos::test {
namespace {

struct Window {
  std::int64_t delivered = 0;
  std::int64_t heap_allocs = 0;
  std::int64_t pool_misses = 0;
  double allocs_per_osdu() const {
    return static_cast<double>(heap_allocs) /
           static_cast<double>(std::max<std::int64_t>(1, delivered));
  }
};

TEST(SteadyStateAlloc, MediaPathAllocationsFlatAfterWarmup) {
  net::LinkConfig link;
  link.bandwidth_bps = 1'000'000'000;
  link.propagation_delay = 1 * kMillisecond;
  link.media_batch_max = 32;
  PairPlatform w(link, 97);
  ScriptedUser src_user(w.a->entity), dst_user(w.b->entity);
  w.a->entity.bind(1, &src_user);
  w.b->entity.bind(2, &dst_user);

  constexpr std::size_t kOsduBytes = 64 * 1024;
  auto req = basic_request({w.a->id, 1}, {w.b->id, 2}, 250.0,
                           static_cast<std::int64_t>(kOsduBytes));
  req.service_class.profile = transport::ProtocolProfile::kRateBasedCm;
  req.service_class.error_control = transport::ErrorControl::kIndicate;
  req.buffer_osdus = 64;
  req.pacing_burst = 32;
  const auto vc = w.a->entity.t_connect_request(req);
  w.platform.run_until(500 * kMillisecond);

  auto* source = w.a->entity.source(vc);
  auto* sink = w.b->entity.sink(vc);
  ASSERT_NE(source, nullptr);
  ASSERT_NE(sink, nullptr);

  // One immutable template frame; every submission shares it by refcount,
  // so the steady state leases nothing new from the pool.
  const auto frame = media::make_frame_view(1, 0, kOsduBytes);

  auto pump_for = [&](Duration dur) {
    std::int64_t delivered = 0;
    const Time until = w.platform.scheduler().now() + dur;
    while (w.platform.scheduler().now() < until) {
      while (source->submit(frame)) {
      }
      w.platform.run_until(w.platform.scheduler().now() + 20 * kMillisecond);
      while (auto o = sink->receive()) {
        (void)o;
        ++delivered;
      }
    }
    return delivered;
  };

  // Warmup: regulation settles, magazines fill, rings hit capacity.
  (void)pump_for(2 * kSecond);

  constexpr int kWindows = 4;
  Window win[kWindows];
  for (int i = 0; i < kWindows; ++i) {
    const std::int64_t heap0 = bench::heap_allocs();
    const auto pool0 = FramePool::global().stats();
    win[i].delivered = pump_for(2 * kSecond);
    win[i].heap_allocs = bench::heap_allocs() - heap0;
    win[i].pool_misses = FramePool::global().stats().pool_misses - pool0.pool_misses;
  }

  for (int i = 0; i < kWindows; ++i) {
    ASSERT_GT(win[i].delivered, 0) << "window " << i << " delivered nothing";
    // Once warmed, the pool must never fall back to the heap.
    EXPECT_EQ(win[i].pool_misses, 0) << "pool miss in steady-state window " << i;
  }

  // Flat heap curve: every window's allocs-per-OSDU must match the first
  // measurement window within a small tolerance (the slack absorbs hash-map
  // rehashes and vector growth amortised across windows).
  const double base = win[0].allocs_per_osdu();
  for (int i = 1; i < kWindows; ++i) {
    const double apo = win[i].allocs_per_osdu();
    EXPECT_LE(std::abs(apo - base), 0.10 * base + 8.0)
        << "allocs/OSDU drifted: window 0 = " << base << ", window " << i << " = " << apo;
  }
}

}  // namespace
}  // namespace cmtos::test
