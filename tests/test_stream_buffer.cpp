// Unit tests for the §3.7 shared circular buffer: semantics, delivery
// gating, drop-at-source, and semaphore blocking-time accounting.

#include <gtest/gtest.h>

#include "transport/stream_buffer.h"

namespace cmtos::transport {
namespace {

Osdu osdu(std::uint32_t seq, std::size_t bytes = 10) {
  Osdu o;
  o.seq = seq;
  o.data = cmtos::PayloadView::adopt(
      std::vector<std::uint8_t>(bytes, static_cast<std::uint8_t>(seq)));
  return o;
}

TEST(StreamBuffer, PushPopFifo) {
  StreamBuffer b(4);
  EXPECT_TRUE(b.try_push(osdu(0), 0));
  EXPECT_TRUE(b.try_push(osdu(1), 0));
  auto a = b.try_pop(1);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->seq, 0u);
  EXPECT_EQ(b.try_pop(1)->seq, 1u);
  EXPECT_FALSE(b.try_pop(1).has_value());
}

TEST(StreamBuffer, PushFailsWhenFull) {
  StreamBuffer b(2);
  EXPECT_TRUE(b.try_push(osdu(0), 0));
  EXPECT_TRUE(b.try_push(osdu(1), 0));
  EXPECT_TRUE(b.full());
  EXPECT_FALSE(b.try_push(osdu(2), 0));
}

TEST(StreamBuffer, ProducerBlockTimeAccumulates) {
  StreamBuffer b(1);
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  EXPECT_FALSE(b.try_push(osdu(1), 100));  // block episode opens at t=100
  // Episode still open: charged up to `now`.
  EXPECT_EQ(b.window_stats(250).producer_blocked, 150);
  (void)b.try_pop(300);
  ASSERT_TRUE(b.try_push(osdu(1), 300));  // closes the episode
  EXPECT_EQ(b.window_stats(400).producer_blocked, 200);
}

TEST(StreamBuffer, ConsumerBlockTimeAccumulates) {
  StreamBuffer b(2);
  EXPECT_FALSE(b.try_pop(50).has_value());  // opens episode
  ASSERT_TRUE(b.try_push(osdu(0), 80));
  ASSERT_TRUE(b.try_pop(90).has_value());   // closes episode
  EXPECT_EQ(b.window_stats(100).consumer_blocked, 40);
}

TEST(StreamBuffer, WindowResetKeepsOpenEpisodes) {
  StreamBuffer b(1);
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  EXPECT_FALSE(b.try_push(osdu(1), 100));
  b.reset_window(200);
  // Episode continues across the reset; only time after 200 is charged.
  EXPECT_EQ(b.window_stats(260).producer_blocked, 60);
}

TEST(StreamBuffer, DataAvailableSignalsBlockedConsumer) {
  StreamBuffer b(2);
  int signalled = 0;
  b.set_data_available([&] { ++signalled; });
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  EXPECT_EQ(signalled, 0);  // no consumer was waiting
  (void)b.try_pop(1);
  EXPECT_FALSE(b.try_pop(2).has_value());  // now blocked
  ASSERT_TRUE(b.try_push(osdu(1), 3));
  EXPECT_EQ(signalled, 1);
}

TEST(StreamBuffer, SpaceAvailableSignalsBlockedProducer) {
  StreamBuffer b(1);
  int signalled = 0;
  b.set_space_available([&] { ++signalled; });
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  (void)b.try_pop(1);
  EXPECT_EQ(signalled, 0);  // no producer waiting
  ASSERT_TRUE(b.try_push(osdu(1), 2));
  EXPECT_FALSE(b.try_push(osdu(2), 3));  // blocked
  (void)b.try_pop(4);
  EXPECT_EQ(signalled, 1);
}

TEST(StreamBuffer, BecameFullFires) {
  StreamBuffer b(2);
  int full_events = 0;
  b.set_became_full([&] { ++full_events; });
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  EXPECT_EQ(full_events, 0);
  ASSERT_TRUE(b.try_push(osdu(1), 0));
  EXPECT_EQ(full_events, 1);
}

TEST(StreamBuffer, DeliveryHoldBlocksPopButNotPush) {
  StreamBuffer b(4);
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  b.set_delivery_enabled(false, 1);
  EXPECT_FALSE(b.try_pop(2).has_value());  // held despite data present
  EXPECT_TRUE(b.try_push(osdu(1), 3));     // buffers keep filling (Orch.Prime)
  b.set_delivery_enabled(true, 4);
  EXPECT_EQ(b.try_pop(5)->seq, 0u);
}

TEST(StreamBuffer, ReenableSignalsBlockedConsumer) {
  StreamBuffer b(4);
  int signalled = 0;
  b.set_data_available([&] { ++signalled; });
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  b.set_delivery_enabled(false, 1);
  EXPECT_FALSE(b.try_pop(2).has_value());
  b.set_delivery_enabled(true, 3);
  EXPECT_EQ(signalled, 1);
}

TEST(StreamBuffer, HoldTimeCountsAsConsumerBlocking) {
  // Blocking delivery shows up as sink-application blocking time — the
  // §6.3.1.2 reports rely on this.
  StreamBuffer b(4);
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  b.set_delivery_enabled(false, 0);
  EXPECT_FALSE(b.try_pop(100).has_value());
  EXPECT_EQ(b.window_stats(400).consumer_blocked, 300);
}

TEST(StreamBuffer, DropNewestIsLifoAndSignalsSpace) {
  StreamBuffer b(2);
  int signalled = 0;
  b.set_space_available([&] { ++signalled; });
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  ASSERT_TRUE(b.try_push(osdu(1), 0));
  EXPECT_FALSE(b.try_push(osdu(2), 5));  // producer blocked
  auto victim = b.drop_newest(10);
  ASSERT_TRUE(victim);
  EXPECT_EQ(victim->seq, 1u);  // newest discarded, oldest survives
  EXPECT_EQ(signalled, 1);
  EXPECT_EQ(b.try_pop(11)->seq, 0u);
}

TEST(StreamBuffer, DropNewestWhileConsumerBlockedKeepsEpisode) {
  // A drop-at-source while the consumer is mid-block must not disturb the
  // consumer's episode accounting or spuriously signal the producer.
  StreamBuffer b(2);
  int space_signals = 0;
  b.set_space_available([&] { ++space_signals; });
  EXPECT_FALSE(b.try_pop(0).has_value());  // consumer episode opens at t=0
  ASSERT_TRUE(b.try_push(osdu(0), 10));
  auto victim = b.drop_newest(20);
  ASSERT_TRUE(victim);
  EXPECT_EQ(victim->seq, 0u);
  EXPECT_EQ(space_signals, 0);  // producer never blocked
  // Consumer episode still open and charged continuously across the drop.
  EXPECT_EQ(b.window_stats(50).consumer_blocked, 50);
  ASSERT_TRUE(b.try_push(osdu(1), 60));
  ASSERT_TRUE(b.try_pop(70).has_value());  // closes the episode
  EXPECT_EQ(b.window_stats(100).consumer_blocked, 70);
}

TEST(StreamBuffer, ResetWindowMidConsumerBlock) {
  StreamBuffer b(2);
  EXPECT_FALSE(b.try_pop(100).has_value());  // episode opens at t=100
  b.reset_window(300);
  // Only time after the reset is charged; the episode itself survives.
  EXPECT_EQ(b.window_stats(350).consumer_blocked, 50);
  ASSERT_TRUE(b.try_push(osdu(0), 400));
  ASSERT_TRUE(b.try_pop(420).has_value());
  EXPECT_EQ(b.window_stats(500).consumer_blocked, 120);
}

TEST(StreamBuffer, DropNewestOnEmpty) {
  StreamBuffer b(2);
  EXPECT_FALSE(b.drop_newest(0).has_value());
}

TEST(StreamBuffer, FlushEmptiesAndUnblocksProducer) {
  StreamBuffer b(2);
  int signalled = 0;
  b.set_space_available([&] { ++signalled; });
  ASSERT_TRUE(b.try_push(osdu(0), 0));
  ASSERT_TRUE(b.try_push(osdu(1), 0));
  EXPECT_FALSE(b.try_push(osdu(2), 0));
  b.flush(5);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(signalled, 1);
}

TEST(StreamBuffer, PeekDoesNotConsumeAndIgnoresHold) {
  StreamBuffer b(2);
  ASSERT_TRUE(b.try_push(osdu(7), 0));
  b.set_delivery_enabled(false, 0);
  ASSERT_NE(b.peek(), nullptr);
  EXPECT_EQ(b.peek()->seq, 7u);
  EXPECT_EQ(b.size(), 1u);
}

class StreamBufferCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamBufferCapacity, FillDrainInvariant) {
  const std::size_t cap = GetParam();
  StreamBuffer b(cap);
  std::uint32_t in = 0, out = 0;
  for (int round = 0; round < 8; ++round) {
    while (b.try_push(osdu(in), 0)) ++in;
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.free_slots(), 0u);
    while (auto o = b.try_pop(0)) EXPECT_EQ(o->seq, out++);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.free_slots(), cap);
  }
  EXPECT_EQ(in, out);
  EXPECT_EQ(in, cap * 8);
}

INSTANTIATE_TEST_SUITE_P(Capacities, StreamBufferCapacity,
                         ::testing::Values(1, 2, 3, 8, 16, 64, 255));

}  // namespace
}  // namespace cmtos::transport
