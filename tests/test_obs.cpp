// Observability layer tests: JSON helpers, the metrics registry, the
// Chrome-trace tracer, the QoS monitor's BER estimator and warmup flag,
// and an end-to-end orchestrated session traced to disk.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fixtures.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/monitor.h"

namespace cmtos::test {
namespace {

using obs::json_escape;
using obs::json_number;
using obs::json_valid;
using obs::Labels;
using obs::Registry;
using obs::Tracer;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- JSON helpers ---

TEST(ObsJson, EscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ObsJson, NumberIsAlwaysAValidToken) {
  EXPECT_TRUE(json_valid(json_number(0.0)));
  EXPECT_TRUE(json_valid(json_number(-12.5)));
  EXPECT_TRUE(json_valid(json_number(4.96e-4)));
  EXPECT_TRUE(json_valid(json_number(1e300)));
  // JSON has no NaN/Inf: the writer must degrade to null.
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(1.0 / 0.0 * 1.0), "null");
}

TEST(ObsJson, ValidatorAcceptsWellFormed) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("  {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": null}} "));
  EXPECT_TRUE(json_valid("\"just a string\""));
  EXPECT_TRUE(json_valid("true"));
}

TEST(ObsJson, ValidatorRejectsMalformed) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\": 1,}"));   // trailing comma
  EXPECT_FALSE(json_valid("{'a': 1}"));      // single quotes
  EXPECT_FALSE(json_valid("{a: 1}"));        // unquoted key
  EXPECT_FALSE(json_valid("[1, 2] trailing"));
  EXPECT_FALSE(json_valid("[01]"));          // leading zero
}

// --- metrics registry ---

TEST(ObsRegistry, LabelsAreIdentity) {
  Registry reg;
  auto& a = reg.counter("x", {{"vc", "1"}});
  auto& b = reg.counter("x", {{"vc", "2"}});
  auto& a2 = reg.counter("x", {{"vc", "1"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);
  a.add(3);
  EXPECT_EQ(a2.value(), 3);
  EXPECT_EQ(b.value(), 0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  Registry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), std::logic_error);
}

TEST(ObsRegistry, GaugeAndSetGauge) {
  Registry reg;
  reg.set_gauge("g", 2.5, {{"k", "v"}});
  EXPECT_DOUBLE_EQ(reg.gauge("g", {{"k", "v"}}).value(), 2.5);
  reg.set_gauge("g", -1.0, {{"k", "v"}});
  EXPECT_DOUBLE_EQ(reg.gauge("g", {{"k", "v"}}).value(), -1.0);
}

TEST(ObsRegistry, HistogramStats) {
  Registry reg;
  auto& h = reg.histogram("lat");
  for (double v : {1.0, 2.0, 4.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 26.75);
  // Quantiles return bucket upper bounds: p50 of {1,2,4,100} <= 4.
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_GE(h.quantile(0.99), 100.0);
}

TEST(ObsRegistry, SnapshotIsValidJson) {
  Registry reg;
  reg.counter("c", {{"vc", "1"}, {"node", "2"}}).add(7);
  reg.set_gauge("g \"quoted\"", 1.5);
  reg.histogram("h").observe(3.0);
  const std::string snap = reg.to_json({{"bench", "unit"}});
  EXPECT_TRUE(json_valid(snap)) << snap;
  EXPECT_NE(snap.find("\"bench\""), std::string::npos);
  EXPECT_NE(snap.find("\"vc\""), std::string::npos);
}

TEST(ObsRegistry, WriteJsonRoundTrips) {
  Registry reg;
  reg.counter("written").add(42);
  const std::string path = ::testing::TempDir() + "obs_registry_roundtrip.json";
  ASSERT_TRUE(reg.write_json(path, {{"run", "t"}}));
  const std::string text = slurp(path);
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("written"), std::string::npos);
  std::remove(path.c_str());
}

// --- tracer ---

TEST(ObsTracer, WritesValidChromeTrace) {
  auto& tr = Tracer::global();
  const std::string path = ::testing::TempDir() + "obs_tracer_unit.json";
  ASSERT_TRUE(tr.start(path));
  EXPECT_TRUE(tr.enabled());
  tr.begin("work", 1, 2);
  tr.end("work", 1, 2);
  const auto id = tr.next_async_id();
  tr.async_begin("span", id, 1, 2);
  tr.async_end("span", id, 1, 2);
  tr.instant("mark", 1, 2, "{\"k\": 1}");
  tr.counter("track", 3.5, 1, 2);
  tr.stop();
  EXPECT_FALSE(tr.enabled());

  const std::string text = slurp(path);
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"span\""), std::string::npos);
  EXPECT_NE(text.find("\"mark\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTracer, DisabledTracerWritesNothing) {
  auto& tr = Tracer::global();
  ASSERT_FALSE(tr.enabled());
  const auto before = tr.events_written();
  tr.instant("ignored");
  EXPECT_EQ(tr.events_written(), before);
}

// --- QoS monitor: BER estimator (regression) and warmup flag ---

transport::QosParams monitor_contract() {
  transport::QosParams p;
  p.osdu_rate = 50;
  p.max_osdu_bytes = 1024;
  p.end_to_end_delay = 100 * kMillisecond;
  p.delay_jitter = 20 * kMillisecond;
  p.packet_error_rate = 0.01;
  p.bit_error_rate = 1e-6;
  return p;
}

TEST(QosMonitorBer, HighCorruptionStaysInPerBitMagnitude) {
  // Regression for the BER unit mismatch: 993 of 1000 TPDUs of 1250 bytes
  // (10^4 bits) corrupt corresponds, under iid bit errors, to a per-bit
  // rate of p = 1 - (1-0.993)^(1/10^4) ~ 4.96e-4.  The old computation
  // divided the corrupt *packet* count by the received-only *bit* count
  // (993 / 7e4 ~ 1.4e-2), a factor ~30 off and trending to infinity as the
  // good-packet count shrinks.
  transport::QosMonitor m(1, monitor_contract(), 1 * kSecond);
  transport::QosReport rep;
  m.set_on_sample([&](const transport::QosReport& r) { rep = r; });
  m.begin(0);
  for (int i = 0; i < 7; ++i) m.on_tpdu_received(1250);
  for (int i = 0; i < 993; ++i) m.on_tpdu_corrupt(1250);
  m.end_period(1 * kSecond);
  EXPECT_GT(rep.measured_bit_error_rate, 1e-4);
  EXPECT_LT(rep.measured_bit_error_rate, 1e-3);
  EXPECT_NEAR(rep.measured_bit_error_rate, 4.96e-4, 5e-5);
}

TEST(QosMonitorBer, LowCorruptionMatchesOneFlippedBitPerTpdu) {
  // Small-f limit: f/B, i.e. ~one flipped bit per corrupt TPDU.
  transport::QosMonitor m(1, monitor_contract(), 1 * kSecond);
  transport::QosReport rep;
  m.set_on_sample([&](const transport::QosReport& r) { rep = r; });
  m.begin(0);
  for (int i = 0; i < 999; ++i) m.on_tpdu_received(1250);
  m.on_tpdu_corrupt(1250);
  m.end_period(1 * kSecond);
  EXPECT_NEAR(rep.measured_bit_error_rate, 1e-7, 2e-8);
}

TEST(QosMonitorBer, AllCorruptPeriodStaysFinite) {
  transport::QosMonitor m(1, monitor_contract(), 1 * kSecond);
  transport::QosReport rep;
  m.set_on_sample([&](const transport::QosReport& r) { rep = r; });
  m.begin(0);
  for (int i = 0; i < 50; ++i) m.on_tpdu_corrupt(1250);
  m.end_period(1 * kSecond);
  EXPECT_GT(rep.measured_bit_error_rate, 0.0);
  EXPECT_LT(rep.measured_bit_error_rate, 1e-2);
}

TEST(QosMonitorBer, CleanPeriodIsZero) {
  transport::QosMonitor m(1, monitor_contract(), 1 * kSecond);
  transport::QosReport rep;
  rep.measured_bit_error_rate = 1.0;
  m.set_on_sample([&](const transport::QosReport& r) { rep = r; });
  m.begin(0);
  for (int i = 0; i < 50; ++i) m.on_tpdu_received(1250);
  m.end_period(1 * kSecond);
  EXPECT_DOUBLE_EQ(rep.measured_bit_error_rate, 0.0);
}

TEST(QosMonitorWarmup, ReportsAreFlaggedAndSuppressed) {
  transport::QosMonitor m(1, monitor_contract(), 1 * kSecond);
  m.set_warmup_periods(1);
  std::vector<transport::QosReport> samples;
  int violations = 0;
  m.set_on_sample([&](const transport::QosReport& r) { samples.push_back(r); });
  m.set_on_violation([&](const transport::QosReport&) { ++violations; });
  m.begin(0);

  auto violate = [&] {
    for (std::uint32_t s = 0; s < 50; ++s) m.on_osdu_seen(s);
    for (int i = 0; i < 10; ++i) m.on_osdu_completed(10 * kMillisecond);
  };
  violate();
  m.end_period(1 * kSecond);  // warmup period: flagged, not indicated
  violate();
  m.end_period(2 * kSecond);  // live period: indicated

  ASSERT_EQ(samples.size(), 2u);
  EXPECT_TRUE(samples[0].warmup);
  EXPECT_TRUE(samples[0].violations.any());
  EXPECT_FALSE(samples[1].warmup);
  EXPECT_EQ(violations, 1);
}

// --- end-to-end: an orchestrated two-VC session traced to disk ---

TEST(ObsIntegration, OrchestratedSessionEmitsTraceSpans) {
  auto& tr = Tracer::global();
  const std::string path = ::testing::TempDir() + "obs_orch_session.json";
  ASSERT_TRUE(tr.start(path));

  {
    // The film scenario: video + audio servers, one workstation sink.
    platform::Platform platform(4242);
    auto& vhost = platform.add_host("video-server");
    auto& ahost = platform.add_host("audio-server");
    auto& ws = platform.add_host("ws");
    platform.network().add_link(vhost.id, ws.id, lan_link());
    platform.network().add_link(ahost.id, ws.id, lan_link());
    platform.network().finalize_routes();

    platform::VideoQos vq;
    vq.frames_per_second = 25;
    platform::AudioQos aq;
    aq.blocks_per_second = 50;

    media::StoredMediaServer vserver(platform, vhost, "film-video");
    media::TrackConfig video;
    video.track_id = 1;
    video.auto_start = false;
    video.vbr.base_bytes = vq.frame_bytes();
    video.vbr.gop = 0;
    video.vbr.wobble = 0;
    const auto vsrc = vserver.add_track(100, video);
    media::StoredMediaServer aserver(platform, ahost, "film-audio");
    media::TrackConfig audio;
    audio.track_id = 2;
    audio.auto_start = false;
    audio.vbr.base_bytes = aq.block_bytes();
    audio.vbr.gop = 0;
    audio.vbr.wobble = 0;
    const auto asrc = aserver.add_track(101, audio);

    media::RenderConfig vr;
    vr.expect_track = 1;
    media::RenderingSink vsink(platform, ws, 200, vr);
    media::RenderConfig ar;
    ar.expect_track = 2;
    media::RenderingSink asink(platform, ws, 201, ar);

    platform::Stream vstream(platform, ws, "v");
    platform::Stream astream(platform, ws, "a");
    vstream.set_buffer_osdus(6);
    astream.set_buffer_osdus(6);
    vstream.connect(vsrc, {ws.id, 200}, vq, {}, nullptr);
    astream.connect(asrc, {ws.id, 201}, aq, {}, nullptr);
    platform.run_until(500 * kMillisecond);
    ASSERT_TRUE(vstream.connected());
    ASSERT_TRUE(astream.connected());

    orch::OrchPolicy policy;
    policy.interval = 100 * kMillisecond;
    bool established = false;
    auto session = platform.orchestrator().orchestrate(
        {vstream.orch_spec(2), astream.orch_spec(2)}, policy,
        [&](bool ok, orch::OrchReason) { established = ok; });
    platform.run_until(kSecond);
    ASSERT_TRUE(established);

    bool primed = false, started = false;
    session->prime(false, [&](bool ok, auto) { primed = ok; });
    platform.run_until(2 * kSecond);
    ASSERT_TRUE(primed);
    session->start([&](bool ok, auto) { started = ok; });
    platform.run_until(2500 * kMillisecond);
    ASSERT_TRUE(started);
    // Several regulation intervals.
    platform.run_until(platform.scheduler().now() + 3 * kSecond);
  }

  tr.stop();
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json_valid(text)) << "trace is not valid JSON";
  EXPECT_NE(text.find("\"Orch.Prime\""), std::string::npos);
  EXPECT_NE(text.find("\"Orch.Start\""), std::string::npos);
  EXPECT_NE(text.find("\"Orch.Regulate\""), std::string::npos);
  EXPECT_NE(text.find("\"TPDU.tx\""), std::string::npos);
  EXPECT_NE(text.find("\"HLO.interval_tick\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmtos::test
