// cmtos/tests/fuzz_pdu.cpp
//
// Deterministic structure-aware PDU fuzzer (DESIGN.md §14).  For every PDU
// family it generates valid encodings from randomized fields, mutates them
// (truncate / bit-flip / splice / field-stomp, with and without a CRC
// fix-up so the structural validation paths past the checksum also get
// exercised), and feeds the result to the decoder.  The oracles:
//
//   1. No crash / no UB — run under ASan+UBSan in CI's fuzz-smoke job.
//   2. Refusal is fine; acceptance must be a fixpoint:
//      e1 = encode(decode(x)); decode(e1) must succeed and re-encode
//      byte-identically to e1.
//
// Fully deterministic: same --seed, same sequence, everywhere.  A committed
// regression corpus (tests/fuzz_corpus/) replays first so past refusal bugs
// stay fixed.
//
// Usage: fuzz_pdu [--seed N] [--iters N] [--corpus DIR]
//        CMTOS_FUZZ_SEED / CMTOS_FUZZ_ITERS env vars override defaults.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "orch/opdu.h"
#include "transport/tpdu.h"
#include "util/checksum.h"
#include "util/frame_pool.h"
#include "util/rng.h"

namespace {

using cmtos::Rng;
using cmtos::WireFault;
using cmtos::orch::Opdu;
using cmtos::orch::OpduType;
using cmtos::transport::AckTpdu;
using cmtos::transport::ControlTpdu;
using cmtos::transport::DataTpdu;
using cmtos::transport::DatagramTpdu;
using cmtos::transport::FeedbackTpdu;
using cmtos::transport::KeepaliveTpdu;
using cmtos::transport::NakTpdu;
using cmtos::transport::TpduType;

using Bytes = std::vector<std::uint8_t>;

// ====================================================================
// Seed generators: valid encodings with randomized field values.
// ====================================================================

Bytes gen_control(Rng& rng) {
  ControlTpdu t;
  t.type = static_cast<TpduType>(rng.uniform(1, 10));
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  t.initiator = {static_cast<std::uint32_t>(rng.uniform(0, 100)),
                 static_cast<std::uint16_t>(rng.uniform(0, 999))};
  t.src = {static_cast<std::uint32_t>(rng.uniform(0, 100)),
           static_cast<std::uint16_t>(rng.uniform(0, 999))};
  t.dst = {static_cast<std::uint32_t>(rng.uniform(0, 100)),
           static_cast<std::uint16_t>(rng.uniform(0, 999))};
  t.sample_period = rng.uniform(0, 1'000'000'000);
  t.buffer_osdus = static_cast<std::uint32_t>(rng.uniform(0, 1024));
  t.importance = static_cast<std::uint8_t>(rng.uniform(0, 255));
  t.shed_watermark_pct = static_cast<std::uint8_t>(rng.uniform(0, 100));
  t.pacing_burst = static_cast<std::uint16_t>(rng.uniform(1, 64));
  t.reason = static_cast<std::uint8_t>(rng.uniform(0, 11));
  t.accepted = static_cast<std::uint8_t>(rng.uniform(0, 1));
  return t.encode();
}

Bytes gen_data(Rng& rng) {
  DataTpdu t;
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  t.tpdu_seq = static_cast<std::uint32_t>(rng.next_u64());
  t.osdu_seq = static_cast<std::uint32_t>(rng.next_u64());
  t.event = rng.next_u64();
  t.frag_index = static_cast<std::uint16_t>(rng.uniform(0, 64));
  t.frag_count = static_cast<std::uint16_t>(rng.uniform(1, 64));
  t.flags = static_cast<std::uint8_t>(rng.uniform(0, 1));
  t.src_timestamp = rng.uniform(0, 1'000'000'000);
  Bytes payload(static_cast<std::size_t>(rng.uniform(0, 64)));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  t.payload = cmtos::PayloadView::adopt(std::move(payload));
  return t.encode();
}

Bytes gen_ack(Rng& rng) {
  AckTpdu t;
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  t.cumulative_ack = static_cast<std::uint32_t>(rng.next_u64());
  t.window = static_cast<std::uint32_t>(rng.uniform(0, 4096));
  return t.encode();
}

Bytes gen_nak(Rng& rng) {
  NakTpdu t;
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  const auto n = static_cast<std::size_t>(rng.uniform(0, 32));
  for (std::size_t i = 0; i < n; ++i)
    t.missing.push_back(static_cast<std::uint32_t>(rng.next_u64()));
  return t.encode();
}

Bytes gen_fb(Rng& rng) {
  FeedbackTpdu t;
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  t.free_slots = static_cast<std::uint32_t>(rng.uniform(0, 4096));
  t.capacity = static_cast<std::uint32_t>(rng.uniform(0, 4096));
  t.highest_osdu = static_cast<std::uint32_t>(rng.next_u64());
  t.paused = static_cast<std::uint8_t>(rng.uniform(0, 1));
  return t.encode();
}

Bytes gen_ka(Rng& rng) {
  KeepaliveTpdu t;
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  return t.encode();
}

Bytes gen_dg(Rng& rng) {
  DatagramTpdu t;
  t.src = {static_cast<std::uint32_t>(rng.uniform(0, 100)),
           static_cast<std::uint16_t>(rng.uniform(0, 999))};
  t.dst_tsap = static_cast<std::uint16_t>(rng.uniform(0, 999));
  t.payload.resize(static_cast<std::size_t>(rng.uniform(0, 64)));
  for (auto& b : t.payload) b = static_cast<std::uint8_t>(rng.next_u64());
  return t.encode();
}

Bytes gen_opdu(Rng& rng) {
  static constexpr OpduType kTypes[] = {
      OpduType::kSessReq, OpduType::kSessAck, OpduType::kSessRel, OpduType::kPrime,
      OpduType::kPrimeAck, OpduType::kPrimed, OpduType::kStart, OpduType::kStartAck,
      OpduType::kStop, OpduType::kStopAck, OpduType::kAdd, OpduType::kAddAck,
      OpduType::kRemove, OpduType::kRemoveAck, OpduType::kRegulateSink,
      OpduType::kRegulateSrc, OpduType::kDrop, OpduType::kRegInd, OpduType::kSrcStats,
      OpduType::kEventReg, OpduType::kEventInd, OpduType::kDelayed, OpduType::kDelayedAck,
      OpduType::kVcDead, OpduType::kTimeReq, OpduType::kTimeResp, OpduType::kEpochNack};
  Opdu o;
  o.type = kTypes[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(std::size(kTypes)) - 1))];
  o.session = rng.next_u64();
  o.vc = static_cast<std::uint32_t>(rng.next_u64());
  o.orch_node = static_cast<std::uint32_t>(rng.uniform(0, 100));
  o.epoch = static_cast<std::uint32_t>(rng.uniform(1, 1000));
  const auto n = static_cast<std::size_t>(rng.uniform(0, 8));
  for (std::size_t i = 0; i < n; ++i)
    o.vcs.push_back({static_cast<std::uint32_t>(rng.next_u64()),
                     static_cast<std::uint32_t>(rng.uniform(0, 100)),
                     static_cast<std::uint32_t>(rng.uniform(0, 100))});
  o.flags = static_cast<std::uint8_t>(rng.uniform(0, 7));
  o.ok = static_cast<std::uint8_t>(rng.uniform(0, 1));
  o.reason = static_cast<cmtos::orch::OrchReason>(rng.uniform(0, 11));
  o.target_seq = static_cast<std::int64_t>(rng.next_u64());
  o.max_drop = static_cast<std::uint32_t>(rng.uniform(0, 100));
  o.interval = rng.uniform(0, 1'000'000'000);
  o.interval_id = static_cast<std::uint32_t>(rng.next_u64());
  o.pattern = rng.next_u64();
  o.mask = rng.next_u64();
  o.event_value = rng.next_u64();
  o.osdu_seq = static_cast<std::uint32_t>(rng.next_u64());
  o.t_origin = rng.uniform(0, 1'000'000'000);
  o.t_peer = rng.uniform(0, 1'000'000'000);
  o.probe_id = static_cast<std::uint32_t>(rng.next_u64());
  return o.encode();
}

// ====================================================================
// Family table: generator + decode/re-encode fixpoint check.
// ====================================================================

// Decodes `wire`; on acceptance runs the fixpoint oracle and returns false
// on any violation.  Each family instantiates this for its own types.
template <typename Pdu>
bool fixpoint(std::span<const std::uint8_t> wire, const char* family) {
  WireFault fault = WireFault::kNone;
  auto d1 = Pdu::decode(wire, &fault);
  if (!d1) return true;  // refusal is always acceptable
  const Bytes e1 = d1->encode();
  auto d2 = Pdu::decode(e1, &fault);
  if (!d2) {
    std::fprintf(stderr, "FUZZ VIOLATION [%s]: re-decode of accepted input failed (%s)\n",
                 family, to_string(fault));
    return false;
  }
  if (d2->encode() != e1) {
    std::fprintf(stderr, "FUZZ VIOLATION [%s]: encode(decode(x)) is not a fixpoint\n",
                 family);
    return false;
  }
  return true;
}

struct Family {
  const char* name;
  Bytes (*gen)(Rng&);
  bool (*check)(std::span<const std::uint8_t>, const char*);
};

constexpr Family kFamilies[] = {
    {"control_tpdu", gen_control, fixpoint<ControlTpdu>},
    {"data_tpdu", gen_data, fixpoint<DataTpdu>},
    {"ack_tpdu", gen_ack, fixpoint<AckTpdu>},
    {"nak_tpdu", gen_nak, fixpoint<NakTpdu>},
    {"fb_tpdu", gen_fb, fixpoint<FeedbackTpdu>},
    {"ka_tpdu", gen_ka, fixpoint<KeepaliveTpdu>},
    {"dg_tpdu", gen_dg, fixpoint<DatagramTpdu>},
    {"opdu", gen_opdu, fixpoint<Opdu>},
};
constexpr std::size_t kFamilyCount = std::size(kFamilies);

// ====================================================================
// Mutators.
// ====================================================================

void mutate(Bytes& x, Rng& rng, const Bytes& donor) {
  const auto kind = rng.uniform(0, 5);
  switch (kind) {
    case 0:  // truncate to a random prefix
      if (!x.empty()) x.resize(static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(x.size()) - 1)));
      break;
    case 1: {  // flip 1-8 random bits
      if (x.empty()) break;
      const auto flips = rng.uniform(1, 8);
      for (std::int64_t i = 0; i < flips; ++i) {
        const auto pos = static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(x.size()) - 1));
        x[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
      }
      break;
    }
    case 2: {  // splice a chunk of another family's encoding over this one
      if (x.empty() || donor.empty()) break;
      const auto len = static_cast<std::size_t>(
          rng.uniform(1, static_cast<std::int64_t>(std::min(donor.size(), x.size()))));
      const auto src = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(donor.size() - len)));
      const auto dst = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(x.size() - len)));
      std::memcpy(x.data() + dst, donor.data() + src, len);
      break;
    }
    case 3: {  // stomp 1-4 bytes with random values (length fields, enums)
      if (x.empty()) break;
      const auto n = rng.uniform(1, 4);
      for (std::int64_t i = 0; i < n; ++i) {
        const auto pos = static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(x.size()) - 1));
        x[pos] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
    case 4: {  // duplicate a chunk of itself (length extension / repetition)
      if (x.empty()) break;
      const auto len = static_cast<std::size_t>(
          rng.uniform(1, static_cast<std::int64_t>(std::min<std::size_t>(x.size(), 16))));
      const auto src = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(x.size() - len)));
      x.insert(x.end(), x.begin() + static_cast<std::ptrdiff_t>(src),
               x.begin() + static_cast<std::ptrdiff_t>(src + len));
      break;
    }
    default:  // replace with short random garbage
      x.resize(static_cast<std::size_t>(rng.uniform(0, 16)));
      for (auto& b : x) b = static_cast<std::uint8_t>(rng.next_u64());
      break;
  }
  // Half the mutants get their CRC trailer recomputed so they pass the
  // checksum and exercise the structural validation behind it.
  if (x.size() >= 4 && rng.bernoulli(0.5)) {
    x.resize(x.size() - 4);
    cmtos::append_crc32(x);
  }
}

// ====================================================================
// DataTpdu packet path (split header + frame) gets its own fuzz loop.
// ====================================================================

bool fuzz_packet_path(Rng& rng) {
  DataTpdu t;
  t.vc = static_cast<std::uint32_t>(rng.next_u64());
  t.tpdu_seq = static_cast<std::uint32_t>(rng.next_u64());
  t.osdu_seq = static_cast<std::uint32_t>(rng.next_u64());
  t.frag_index = static_cast<std::uint16_t>(rng.uniform(0, 8));
  t.frag_count = static_cast<std::uint16_t>(rng.uniform(1, 8));
  Bytes payload(static_cast<std::size_t>(rng.uniform(0, 64)));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  t.payload = cmtos::PayloadView::adopt(std::move(payload));

  cmtos::net::Packet pkt;
  t.encode_onto(pkt);

  switch (rng.uniform(0, 3)) {
    case 0:  // header bit flip
      if (!pkt.payload.empty())
        pkt.payload[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(pkt.payload.size()) - 1))] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
      break;
    case 1:  // frame truncation
      if (pkt.frame.size() > 0)
        pkt.frame = pkt.frame.subview(
            0, static_cast<std::size_t>(
                   rng.uniform(0, static_cast<std::int64_t>(pkt.frame.size()) - 1)));
      break;
    case 2: {  // frame body flip (private copy, like the link does)
      if (pkt.frame.size() == 0) break;
      Bytes copy(pkt.frame.data(), pkt.frame.data() + pkt.frame.size());
      copy[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(copy.size()) - 1))] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
      pkt.frame = cmtos::PayloadView::adopt(std::move(copy));
      break;
    }
    default:  // header truncation
      pkt.payload.resize(static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(pkt.payload.size()))));
      break;
  }

  WireFault fault = WireFault::kNone;
  auto d = DataTpdu::decode_packet(pkt, &fault);
  if (!d) return true;
  // Accepted: fields must survive a flat-encode round trip.
  const Bytes e1 = d->encode();
  auto d2 = DataTpdu::decode(e1);
  if (!d2 || d2->encode() != e1) {
    std::fprintf(stderr, "FUZZ VIOLATION [data_tpdu/packet]: fixpoint broken\n");
    return false;
  }
  return true;
}

// ====================================================================
// Corpus replay.
// ====================================================================

bool replay_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "fuzz_pdu: corpus dir %s missing\n", dir.c_str());
    return false;
  }
  std::size_t files = 0;
  bool ok = true;
  // Sorted for deterministic replay order.
  std::vector<fs::path> paths;
  for (const auto& ent : fs::directory_iterator(dir))
    if (ent.is_regular_file()) paths.push_back(ent.path());
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    Bytes bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ++files;
    // Every corpus entry goes through every decoder: a refusal bug in any
    // family must stay fixed regardless of which family it was found in.
    for (const auto& fam : kFamilies)
      if (!fam.check(bytes, fam.name)) {
        std::fprintf(stderr, "fuzz_pdu: corpus file %s violates [%s]\n",
                     path.string().c_str(), fam.name);
        ok = false;
      }
  }
  std::printf("fuzz_pdu: corpus replay: %zu files x %zu decoders\n", files, kFamilyCount);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1'000'000;
  std::string corpus;
  if (const char* env = std::getenv("CMTOS_FUZZ_SEED")) seed = std::strtoull(env, nullptr, 10);
  if (const char* env = std::getenv("CMTOS_FUZZ_ITERS"))
    iters = std::strtoull(env, nullptr, 10);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 10);
    else if (arg == "--iters" && i + 1 < argc) iters = std::strtoull(argv[++i], nullptr, 10);
    else if (arg == "--corpus" && i + 1 < argc) corpus = argv[++i];
    else {
      std::fprintf(stderr, "usage: fuzz_pdu [--seed N] [--iters N] [--corpus DIR]\n");
      return 2;
    }
  }

  bool ok = true;
  if (!corpus.empty()) ok = replay_corpus(corpus) && ok;

  Rng rng(seed);
  // A standing pool of valid encodings per family: mutation starts from
  // structure, not noise, so the deep decode paths actually get reached.
  std::vector<std::vector<Bytes>> pool(kFamilyCount);
  for (std::size_t f = 0; f < kFamilyCount; ++f)
    for (int i = 0; i < 32; ++i) pool[f].push_back(kFamilies[f].gen(rng));

  std::uint64_t refusals = 0, acceptances = 0, violations = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto f = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(kFamilyCount)));  // == count -> packet path
    if (f == kFamilyCount) {
      if (!fuzz_packet_path(rng)) ++violations;
      continue;
    }
    const auto& fam = kFamilies[f];
    const auto& seeds = pool[f];
    Bytes x = seeds[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(seeds.size()) - 1))];
    // Donor from a random family: cross-family splices masquerade one
    // PDU's bytes as another's.
    const auto df = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(kFamilyCount) - 1));
    const auto& dseeds = pool[df];
    const Bytes& donor = dseeds[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(dseeds.size()) - 1))];
    mutate(x, rng, donor);
    WireFault fault = WireFault::kNone;
    const bool accepted =
        [&] {
          switch (f) {  // decode once for stats; fixpoint re-decodes on acceptance
            case 0: return ControlTpdu::decode(x, &fault).has_value();
            case 1: return DataTpdu::decode(x, &fault).has_value();
            case 2: return AckTpdu::decode(x, &fault).has_value();
            case 3: return NakTpdu::decode(x, &fault).has_value();
            case 4: return FeedbackTpdu::decode(x, &fault).has_value();
            case 5: return KeepaliveTpdu::decode(x, &fault).has_value();
            case 6: return DatagramTpdu::decode(x, &fault).has_value();
            default: return Opdu::decode(x, &fault).has_value();
          }
        }();
    accepted ? ++acceptances : ++refusals;
    if (!fam.check(x, fam.name)) ++violations;
  }

  std::printf(
      "fuzz_pdu: seed=%llu iters=%llu refusals=%llu acceptances=%llu violations=%llu\n",
      static_cast<unsigned long long>(seed), static_cast<unsigned long long>(iters),
      static_cast<unsigned long long>(refusals), static_cast<unsigned long long>(acceptances),
      static_cast<unsigned long long>(violations));
  if (violations > 0 || !ok) {
    std::fprintf(stderr, "fuzz_pdu: FAILED\n");
    return 1;
  }
  std::printf("fuzz_pdu: OK\n");
  return 0;
}
