// Unit tests for the zero-copy payload substrate (util/frame_pool.h):
// lease/freeze/recycle, refcounting across copies and subviews, vector
// adoption, pool-backed copies, and the steady-state no-miss invariant.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "util/frame_pool.h"

namespace cmtos {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), seed);
  return v;
}

PayloadView make_view(FramePool& pool, const std::vector<std::uint8_t>& bytes) {
  FrameLease lease = pool.lease(bytes.size());
  std::memcpy(lease.data(), bytes.data(), bytes.size());
  return std::move(lease).freeze(bytes.size());
}

TEST(FramePool, LeaseFreezeRoundTrip) {
  FramePool pool;
  const auto bytes = pattern(3000, 7);
  const PayloadView v = make_view(pool, bytes);
  EXPECT_EQ(v.size(), bytes.size());
  EXPECT_EQ(v, bytes);
  EXPECT_NE(v.frame(), nullptr);
  EXPECT_EQ(v.offset(), 0u);
}

TEST(FramePool, RecyclesFramesSteadyState) {
  FramePool pool;
  pool.reset_stats();
  for (int i = 0; i < 100; ++i) {
    const PayloadView v = make_view(pool, pattern(4000, static_cast<std::uint8_t>(i)));
    EXPECT_EQ(v.size(), 4000u);
  }  // each view drops before the next lease: one warm frame recycles
  const auto st = pool.stats();
  EXPECT_EQ(st.pool_misses, 1);
  EXPECT_EQ(st.pool_hits, 99);
}

TEST(FramePool, SubviewSharesFrameWithoutCopy) {
  FramePool pool;
  const auto bytes = pattern(2048, 3);
  const PayloadView whole = make_view(pool, bytes);
  const PayloadView a = whole.subview(0, 1000);
  const PayloadView b = whole.subview(1000, 1048);
  EXPECT_EQ(a.frame(), whole.frame());
  EXPECT_EQ(b.frame(), whole.frame());
  EXPECT_EQ(b.offset(), 1000u);
  EXPECT_EQ(a.data(), whole.data());
  EXPECT_EQ(b.data(), whole.data() + 1000);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), bytes.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), bytes.begin() + 1000));
}

TEST(FramePool, SubviewsKeepFrameAliveAfterParentDrops) {
  FramePool pool;
  pool.reset_stats();
  PayloadView tail;
  {
    const PayloadView whole = make_view(pool, pattern(512, 9));
    tail = whole.subview(500, 12);
  }
  // The frame must not have been recycled while `tail` still points in.
  const auto bytes = pattern(512, 9);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), bytes.begin() + 500));
  tail.reset();
  // Now it recycles: the next lease of the same class is a hit.
  const PayloadView again = make_view(pool, pattern(512, 1));
  EXPECT_EQ(pool.stats().pool_hits, 1);
  EXPECT_EQ(again.size(), 512u);
}

TEST(FramePool, ZeroLengthSubviewPinsNothing) {
  FramePool pool;
  const PayloadView whole = make_view(pool, pattern(64, 2));
  const PayloadView empty = whole.subview(32, 0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.frame(), nullptr);
  EXPECT_EQ(empty, PayloadView{});
}

TEST(FramePool, AdoptWrapsVectorWithoutPool) {
  auto bytes = pattern(777, 5);
  const auto expect = bytes;
  const PayloadView v = PayloadView::adopt(std::move(bytes));
  EXPECT_EQ(v, expect);
  const PayloadView copy = v;  // refcount, not bytes
  EXPECT_EQ(copy.data(), v.data());
}

TEST(FramePool, AdoptEmptyVectorIsEmptyView) {
  const PayloadView v = PayloadView::adopt({});
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.frame(), nullptr);
}

TEST(FramePool, CopyOfCountsCopies) {
  auto& pool = FramePool::global();
  pool.reset_stats();
  const auto bytes = pattern(100, 11);
  const PayloadView v = PayloadView::copy_of(bytes);
  EXPECT_EQ(v, bytes);
  const auto st = pool.stats();
  EXPECT_EQ(st.copies, 1);
  EXPECT_EQ(st.copied_bytes, 100);
}

TEST(FramePool, ToVectorAndEquality) {
  FramePool pool;
  const auto bytes = pattern(50, 1);
  const PayloadView v = make_view(pool, bytes);
  EXPECT_EQ(v.to_vector(), bytes);
  const PayloadView w = make_view(pool, bytes);
  EXPECT_EQ(v, w);          // content equality across distinct frames
  EXPECT_NE(v.data(), w.data());
}

TEST(FramePool, OversizeLeaseIsOneOff) {
  FramePool pool;
  pool.reset_stats();
  const std::size_t big = (1u << 20) + 1;
  FrameLease lease = pool.lease(big);
  EXPECT_GE(lease.capacity(), big);
  const PayloadView v = std::move(lease).freeze(big);
  EXPECT_EQ(v.size(), big);
  EXPECT_EQ(pool.stats().pool_misses, 1);
}

TEST(FramePool, DroppedLeaseReturnsFrameUnused) {
  FramePool pool;
  pool.reset_stats();
  { FrameLease lease = pool.lease(100); }
  { FrameLease lease = pool.lease(100); }
  const auto st = pool.stats();
  EXPECT_EQ(st.pool_misses, 1);
  EXPECT_EQ(st.pool_hits, 1);
}

TEST(FramePool, CrossThreadReleaseRecycles) {
  // Source thread leases, sink thread drops the last ref: the frame must
  // survive the handoff and recycle without corruption.
  auto& pool = FramePool::global();
  const auto bytes = pattern(4096, 42);
  for (int round = 0; round < 50; ++round) {
    PayloadView v = make_view(pool, bytes);
    std::thread sink([view = std::move(v), &bytes] {
      ASSERT_EQ(view.size(), bytes.size());
      EXPECT_TRUE(std::equal(view.begin(), view.end(), bytes.begin()));
    });
    sink.join();
  }
}

}  // namespace
}  // namespace cmtos
