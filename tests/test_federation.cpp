// Federated HLO tests (orch/federation): a two-level orchestration tree
// where domain agents regulate their own VCs and push one DomainAggregate
// per interval to the root.  Acceptance: the root's workload is
// O(domains) aggregates — never the per-VC report firehose — and a domain
// orchestrator's death is absorbed inside that domain (failover + epoch
// fencing compose per domain) while the rest of the federation never
// notices.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fixtures.h"
#include "obs/metrics.h"
#include "orch/failover.h"
#include "orch/federation.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;
using orch::FederatedHlo;
using orch::FederationPolicy;

// Three domains with distinct orchestrating nodes:
//   domain 0: srv1->wsB, srv1->wsC, srv2->wsC  (no common node; the §7
//             extension elects wsC, and killing wsC leaves a survivor so
//             failover re-elects instead of orphaning)
//   domain 1: srv1->ws1 x2                     (sink tie-break elects ws1)
//   domain 2: srv1->ws2 x2                     (elects ws2)
struct FedWorld {
  FedWorld() : star(6, lan_link(), 29) {
    p = &star.platform;
    srv1 = star.leaves[0];
    srv2 = star.leaves[1];
    wsB = star.leaves[2];
    wsC = star.leaves[3];
    ws1 = star.leaves[4];
    ws2 = star.leaves[5];
    server1 = std::make_unique<StoredMediaServer>(*p, *srv1, "srv1");
    server2 = std::make_unique<StoredMediaServer>(*p, *srv2, "srv2");

    platform::Host* const sink_host[7] = {wsB, wsC, wsC, ws1, ws1, ws2, ws2};
    int connected = 0;
    for (int i = 0; i < 7; ++i) {
      StoredMediaServer& server = (i == 2) ? *server2 : *server1;
      platform::Host& src_host = (i == 2) ? *srv2 : *srv1;
      TrackConfig track;
      track.track_id = static_cast<std::uint32_t>(i + 1);
      track.vbr.base_bytes = 512;
      const auto src = server.add_track(static_cast<net::Tsap>(100 + i), track);
      RenderConfig rc;
      rc.expect_track = track.track_id;
      sinks.push_back(std::make_unique<RenderingSink>(*p, *sink_host[i],
                                                      static_cast<net::Tsap>(200 + i), rc));
      streams.push_back(
          std::make_unique<platform::Stream>(*p, src_host, "s" + std::to_string(i)));
      streams.back()->set_buffer_osdus(8);
      platform::VideoQos vq;
      vq.frames_per_second = 10;
      streams.back()->connect(src, {sink_host[i]->id, static_cast<net::Tsap>(200 + i)},
                              platform::MediaQos{vq}, {},
                              [&](bool ok, auto) { connected += ok; });
    }
    p->run_until(kSecond);
    EXPECT_EQ(connected, 7);

    FederationPolicy fp;
    fp.domain.interval = 100 * kMillisecond;
    fp.domain.allow_no_common_node = true;
    fed = std::make_unique<FederatedHlo>(p->orchestrator(), fp);

    bool established = false;
    const bool created = fed->orchestrate(
        {{streams[0]->orch_spec(2), streams[1]->orch_spec(2), streams[2]->orch_spec(2)},
         {streams[3]->orch_spec(2), streams[4]->orch_spec(2)},
         {streams[5]->orch_spec(2), streams[6]->orch_spec(2)}},
        [&](bool ok, auto) { established = ok; });
    EXPECT_TRUE(created);
    if (!created) return;
    EXPECT_EQ(fed->domain_count(), 3u);
    if (fed->domain_count() != 3u) return;
    EXPECT_EQ(fed->domain(0)->orchestrating_node(), wsC->id);
    EXPECT_EQ(fed->domain(1)->orchestrating_node(), ws1->id);
    EXPECT_EQ(fed->domain(2)->orchestrating_node(), ws2->id);
    p->run_until(1500 * kMillisecond);
    EXPECT_TRUE(established);

    bool primed = false, started = false;
    fed->prime(false, [&](bool ok, auto) { primed = ok; });
    p->run_until(2500 * kMillisecond);
    EXPECT_TRUE(primed);
    fed->start([&](bool ok, auto) { started = ok; });
    p->run_until(3 * kSecond);
    EXPECT_TRUE(started);
  }

  StarPlatform star;
  platform::Platform* p = nullptr;
  platform::Host* srv1 = nullptr;
  platform::Host* srv2 = nullptr;
  platform::Host* wsB = nullptr;
  platform::Host* wsC = nullptr;
  platform::Host* ws1 = nullptr;
  platform::Host* ws2 = nullptr;
  std::unique_ptr<StoredMediaServer> server1, server2;
  std::vector<std::unique_ptr<RenderingSink>> sinks;
  std::vector<std::unique_ptr<platform::Stream>> streams;
  std::unique_ptr<FederatedHlo> fed;
};

TEST(Federation, RootProcessesAggregatesNotPerVcReports) {
  FedWorld w;
  w.p->run_until(10 * kSecond);

  // ~7 s of regulation at 10 intervals/s: each domain pushed ~70 digests.
  const std::uint64_t root_agg = w.fed->root_aggregates_processed();
  EXPECT_GT(root_agg, 60u);

  // The per-VC firehose stayed inside the domains: 7 VCs' worth of reports
  // were processed by domain agents, while the root ingested only the 3
  // per-domain digests per interval.
  std::uint64_t domain_reports = 0;
  for (std::size_t i = 0; i < w.fed->domain_count(); ++i) {
    EXPECT_GT(w.fed->domain_reports_processed(i), 0u) << "domain " << i;
    domain_reports += w.fed->domain_reports_processed(i);
  }
  EXPECT_GT(domain_reports, 2 * root_agg);

  // Aggregates account for every report: nothing bypassed the digests.
  EXPECT_GE(obs::Registry::global().counter("fed.root_aggregates").value(),
            static_cast<std::int64_t>(root_agg));

  // The root's steering stays inside the imperceptibility clamp, and the
  // federation is aligned: domains started together and the outer loop
  // keeps their mean positions within a fraction of a second.
  for (std::size_t i = 0; i < w.fed->domain_count(); ++i) {
    EXPECT_GE(w.fed->domain_rate_scale(i), 0.95) << "domain " << i;
    EXPECT_LE(w.fed->domain_rate_scale(i), 1.05) << "domain " << i;
  }
  EXPECT_LT(w.fed->max_domain_skew_s(), 0.5);
  EXPECT_LT(obs::Registry::global().gauge("fed.max_domain_skew_s").value(), 0.5);
}

TEST(Federation, StopBarrierFreezesEveryDomain) {
  FedWorld w;
  w.p->run_until(6 * kSecond);

  bool stopped = false;
  w.fed->stop([&](bool ok, auto) { stopped = ok; });
  w.p->run_until(7 * kSecond);
  EXPECT_TRUE(stopped);

  // No domain regulates after the stop barrier, so the aggregate flow — the
  // root's only input — goes quiet too.
  const std::uint64_t agg_after_stop = w.fed->root_aggregates_processed();
  w.p->run_until(9 * kSecond);
  EXPECT_EQ(w.fed->root_aggregates_processed(), agg_after_stop);
}

TEST(Federation, DomainOrchestratorDeathIsolatedToItsDomain) {
  FedWorld w;
  auto fleet = std::make_unique<orch::FailoverFleet>(
      w.p->scheduler(), w.p->orchestrator(),
      [&](net::NodeId n) { return &w.p->host(n).llo; },
      [&](net::NodeId n) { return w.p->node_alive(n); });
  w.fed->adopt_failover(*fleet);
  EXPECT_EQ(fleet->session_count(), 3u);
  w.p->run_until(5 * kSecond);

  const std::uint64_t d1_before = w.fed->domain_reports_processed(1);
  const std::uint64_t d2_before = w.fed->domain_reports_processed(2);

  // Kill domain 0's orchestrating node.  Its survivors re-elect wsB within
  // the domain; domains 1 and 2 must never notice.
  w.p->crash_node(w.wsC->id);
  w.p->run_until(12 * kSecond);

  EXPECT_EQ(fleet->supervisor(0).failovers(), 1);
  EXPECT_FALSE(fleet->supervisor(0).orphaned());
  ASSERT_NE(w.fed->domain(0), nullptr);
  EXPECT_EQ(w.fed->domain(0)->orchestrating_node(), w.wsB->id);
  EXPECT_EQ(fleet->supervisor(1).failovers(), 0);
  EXPECT_EQ(fleet->supervisor(2).failovers(), 0);
  EXPECT_EQ(fleet->orphaned(), 0);

  // The other domains kept regulating throughout...
  EXPECT_GT(w.fed->domain_reports_processed(1), d1_before);
  EXPECT_GT(w.fed->domain_reports_processed(2), d2_before);

  // ...and the replacement domain-0 agent was re-wired into the root: its
  // aggregates flow again after the failover.
  const std::uint64_t agg_mark = w.fed->root_aggregates_processed();
  const std::uint64_t d0_mark = w.fed->domain_reports_processed(0);
  w.p->run_until(14 * kSecond);
  EXPECT_GT(w.fed->root_aggregates_processed(), agg_mark);
  EXPECT_GT(w.fed->domain_reports_processed(0), d0_mark);
}

TEST(Federation, OrchestrateFailsClosedOnUnorchestratableDomain) {
  FedWorld w;
  // An empty domain has no electable node: the whole federated orchestrate
  // reports failure and retains nothing.
  FederationPolicy fp;
  FederatedHlo fed2(w.p->orchestrator(), fp);
  EXPECT_FALSE(fed2.orchestrate({{w.streams[0]->orch_spec(2)}, {}}, nullptr));
  EXPECT_EQ(fed2.domain_count(), 0u);
}

}  // namespace
}  // namespace cmtos::test
