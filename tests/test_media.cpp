// Media substrate tests: verifiable content, VBR model, stored server,
// live source semantics, rendering sink accounting, SyncMeter math.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "media/live_source.h"

namespace cmtos::test {
namespace {

using media::LiveConfig;
using media::LiveSource;
using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;
using media::VbrModel;

TEST(Content, MakeAndVerifyRoundTrip) {
  const auto frame = media::make_frame(7, 42, 1000);
  EXPECT_EQ(frame.size(), 1000u);
  const auto h = media::verify_frame(frame);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->track_id, 7u);
  EXPECT_EQ(h->index, 42u);
}

TEST(Content, VerifyDetectsCorruption) {
  auto frame = media::make_frame(7, 42, 500);
  frame[300] ^= 0x40;
  EXPECT_FALSE(media::verify_frame(frame).has_value());
}

TEST(Content, VerifyDetectsTruncation) {
  auto frame = media::make_frame(7, 42, 500);
  frame.resize(400);
  EXPECT_FALSE(media::verify_frame(frame).has_value());
}

TEST(Content, MinimumSizeFrame) {
  const auto frame = media::make_frame(1, 0, 1);  // clamped to header size
  EXPECT_EQ(frame.size(), 16u);
  EXPECT_TRUE(media::verify_frame(frame).has_value());
}

TEST(Content, DeterministicAcrossCalls) {
  EXPECT_EQ(media::make_frame(3, 9, 256), media::make_frame(3, 9, 256));
  EXPECT_NE(media::make_frame(3, 9, 256), media::make_frame(3, 10, 256));
}

TEST(Vbr, GopPatternAndDeterminism) {
  VbrModel m;
  m.base_bytes = 4096;
  m.gop = 12;
  m.i_ratio = 2.5;
  m.p_ratio = 0.7;
  // I-frames are consistently larger than neighbouring P-frames.
  for (std::uint32_t i = 0; i < 120; i += 12) {
    EXPECT_GT(m.frame_bytes(i), m.frame_bytes(i + 1));
    EXPECT_GT(m.frame_bytes(i), 2 * 4096 * 7 / 10);
  }
  EXPECT_EQ(m.frame_bytes(5), m.frame_bytes(5));
}

TEST(Vbr, GopZeroMeansConstantPattern) {
  VbrModel m;
  m.gop = 0;
  m.wobble = 0;
  EXPECT_EQ(m.frame_bytes(0), m.frame_bytes(1));
  EXPECT_EQ(m.frame_bytes(1), m.frame_bytes(100));
}

TEST(StoredServer, ProducesVerifiableFramesInOrder) {
  PairPlatform w;
  StoredMediaServer server(w.platform, *w.a, "s");
  TrackConfig t;
  t.track_id = 5;
  t.vbr.base_bytes = 1024;
  const auto src = server.add_track(100, t);
  RenderConfig rc;
  rc.expect_track = 5;
  RenderingSink sink(w.platform, *w.b, 200, rc);
  platform::Stream stream(w.platform, *w.b, "s");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(4 * kSecond);

  ASSERT_GT(sink.records().size(), 50u);
  EXPECT_EQ(sink.stats().integrity_failures, 0);
  for (std::size_t i = 0; i < sink.records().size(); ++i)
    EXPECT_EQ(sink.records()[i].frame_index, i);
}

TEST(StoredServer, FiniteTrackEnds) {
  PairPlatform w;
  StoredMediaServer server(w.platform, *w.a, "s");
  TrackConfig t;
  t.track_id = 5;
  t.frame_count = 30;
  t.vbr.base_bytes = 512;
  const auto src = server.add_track(100, t);
  RenderingSink sink(w.platform, *w.b, 200, {});
  platform::Stream stream(w.platform, *w.b, "s");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(5 * kSecond);
  EXPECT_EQ(sink.stats().frames_rendered, 30);
  EXPECT_TRUE(server.stats(100).end_of_track);
}

TEST(StoredServer, SeekRepositionsPlayout) {
  PairPlatform w;
  StoredMediaServer server(w.platform, *w.a, "s");
  TrackConfig t;
  t.track_id = 5;
  t.auto_start = true;
  t.vbr.base_bytes = 512;
  const auto src = server.add_track(100, t);
  server.seek(100, 1000);
  RenderConfig rc;
  rc.expect_track = 5;
  RenderingSink sink(w.platform, *w.b, 200, rc);
  platform::Stream stream(w.platform, *w.b, "s");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(2 * kSecond);
  ASSERT_FALSE(sink.records().empty());
  EXPECT_GE(sink.records().front().frame_index, 1000u);
}

TEST(LiveSourceTest, ConstantLogicalRate) {
  PairPlatform w;
  LiveConfig cfg;
  cfg.track_id = 8;
  cfg.rate = 25.0;
  cfg.frame_bytes = 1024;
  LiveSource camera(w.platform, *w.a, 100, cfg);
  RenderConfig rc;
  rc.expect_track = 8;
  RenderingSink monitor(w.platform, *w.b, 200, rc);
  platform::Stream stream(w.platform, *w.b, "cam");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect({w.a->id, 100}, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(4100 * kMillisecond);
  // ~25 fps capture over ~4s.
  EXPECT_NEAR(static_cast<double>(camera.stats().frames_captured), 4.0 * 25, 5);
  EXPECT_GT(monitor.stats().frames_rendered, 80);
  EXPECT_EQ(monitor.stats().integrity_failures, 0);
}

TEST(LiveSourceTest, DropsWhenRingFullInsteadOfQueueing) {
  // Live frames are perishable: a too-slow contract forces capture drops,
  // never growing latency.
  net::LinkConfig thin = lan_link();
  thin.bandwidth_bps = 1'000'000;
  PairPlatform w(thin);
  LiveConfig cfg;
  cfg.track_id = 8;
  cfg.rate = 25.0;
  cfg.frame_bytes = 4096;  // needs ~1.3 Mbit/s at the negotiated frame size; admission degrades the rate
  LiveSource camera(w.platform, *w.a, 100, cfg);
  RenderingSink monitor(w.platform, *w.b, 200, {});
  platform::Stream stream(w.platform, *w.b, "cam");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect({w.a->id, 100}, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(5 * kSecond);
  ASSERT_TRUE(stream.connected());
  EXPECT_GT(camera.stats().frames_dropped_at_capture, 10);
}

TEST(LiveSourceTest, SwitchOffStopsCapture) {
  PairPlatform w;
  LiveConfig cfg;
  cfg.track_id = 8;
  LiveSource camera(w.platform, *w.a, 100, cfg);
  RenderingSink monitor(w.platform, *w.b, 200, {});
  platform::Stream stream(w.platform, *w.b, "cam");
  stream.connect({w.a->id, 100}, {w.b->id, 200}, platform::VideoQos{}, {}, nullptr);
  w.platform.run_until(2 * kSecond);
  camera.switch_off();
  const auto at_off = camera.stats().frames_captured;
  w.platform.run_until(4 * kSecond);
  EXPECT_EQ(camera.stats().frames_captured, at_off);
  camera.switch_on();
  w.platform.run_until(6 * kSecond);
  EXPECT_GT(camera.stats().frames_captured, at_off + 20);
}

TEST(Sink, StarvationCountedWhenStreamUnderruns) {
  PairPlatform w;
  StoredMediaServer server(w.platform, *w.a, "s");
  TrackConfig t;
  t.track_id = 5;
  t.paced_rate = 10.0;  // server can only manage 10 fps
  t.auto_start = true;
  t.vbr.base_bytes = 512;
  const auto src = server.add_track(100, t);
  RenderConfig rc;
  rc.rate = 25.0;  // renderer wants 25
  RenderingSink sink(w.platform, *w.b, 200, rc);
  platform::Stream stream(w.platform, *w.b, "s");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  stream.connect(src, {w.b->id, 200}, vq, {}, nullptr);
  w.platform.run_until(6 * kSecond);
  EXPECT_GT(sink.stats().starvation_events, 20);
}

TEST(SyncMeterTest, ComputesPairwiseSkew) {
  sim::Scheduler sched;
  // Two fake sinks are awkward to construct; use real ones in a world.
  PairPlatform w;
  StoredMediaServer server(w.platform, *w.a, "s");
  TrackConfig t1;
  t1.track_id = 1;
  t1.vbr.base_bytes = 512;
  const auto src1 = server.add_track(100, t1);
  TrackConfig t2;
  t2.track_id = 2;
  t2.vbr.base_bytes = 128;
  t2.vbr.gop = 0;
  const auto src2 = server.add_track(101, t2);
  RenderConfig r1;
  r1.expect_track = 1;
  RenderingSink sink1(w.platform, *w.b, 200, r1);
  RenderConfig r2;
  r2.expect_track = 2;
  RenderingSink sink2(w.platform, *w.b, 201, r2);
  platform::Stream s1(w.platform, *w.b, "1"), s2(w.platform, *w.b, "2");
  platform::VideoQos vq;
  vq.frames_per_second = 25;
  platform::AudioQos aq;
  aq.blocks_per_second = 50;
  s1.connect(src1, {w.b->id, 200}, vq, {}, nullptr);
  s2.connect(src2, {w.b->id, 201}, aq, {}, nullptr);

  media::SyncMeter meter(w.platform.scheduler());
  meter.add_stream("video", &sink1);
  meter.add_stream("audio", &sink2);
  meter.begin(200 * kMillisecond);
  w.platform.run_until(8 * kSecond);

  EXPECT_GT(meter.samples().size(), 30u);
  const auto skews = meter.skew_seconds(0, 1);
  EXPECT_GT(skews.count(), 20u);
  // Free-running but same perfect clock: skew stays small.
  EXPECT_LT(meter.max_abs_skew_seconds(), 0.30);
}

}  // namespace
}  // namespace cmtos::test
