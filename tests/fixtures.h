// Shared test fixtures: canned topologies over the full platform stack.

#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "media/sink.h"
#include "media/stored_server.h"
#include "media/sync_meter.h"
#include "platform/host.h"
#include "platform/stream.h"

namespace cmtos::test {

/// Default link between workstation-class hosts: 10 Mbit/s, 1 ms.
inline net::LinkConfig lan_link() {
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 10'000'000;
  cfg.propagation_delay = 1 * kMillisecond;
  return cfg;
}

/// A star topology: N hosts around a switch node (the switch runs a full
/// host stack too, but typically only forwards).
struct StarPlatform {
  explicit StarPlatform(std::size_t leaf_count, net::LinkConfig link = lan_link(),
                        std::uint64_t seed = 42)
      : platform(seed) {
    hub = &platform.add_host("hub");
    for (std::size_t i = 0; i < leaf_count; ++i) {
      auto& h = platform.add_host("leaf" + std::to_string(i));
      platform.network().add_link(hub->id, h.id, link);
      leaves.push_back(&h);
    }
    platform.network().finalize_routes();
  }

  platform::Platform platform;
  platform::Host* hub = nullptr;
  std::vector<platform::Host*> leaves;
};

/// Two hosts with a direct link — the minimal source->sink world.
struct PairPlatform {
  explicit PairPlatform(net::LinkConfig link = lan_link(), std::uint64_t seed = 42,
                        sim::LocalClock clock_a = {}, sim::LocalClock clock_b = {})
      : platform(seed) {
    a = &platform.add_host("a", clock_a);
    b = &platform.add_host("b", clock_b);
    platform.network().add_link(a->id, b->id, link);
    platform.network().finalize_routes();
  }

  platform::Platform platform;
  platform::Host* a = nullptr;
  platform::Host* b = nullptr;
};

/// A scripted transport user for control-plane tests: records every
/// indication it receives and applies a configurable accept policy.
class ScriptedUser : public transport::TransportUser {
 public:
  explicit ScriptedUser(transport::TransportEntity& entity) : entity_(&entity) {}

  // Policy knobs.
  bool accept_connects = true;
  bool accept_renegotiations = true;
  std::optional<transport::QosParams> narrow;

  // Recorded history.
  struct ConnectInd {
    transport::VcId vc;
    transport::ConnectRequest req;
  };
  std::vector<ConnectInd> connect_indications;
  std::vector<std::pair<transport::VcId, transport::QosParams>> confirms;
  std::vector<std::pair<transport::VcId, transport::DisconnectReason>> disconnects;
  std::vector<transport::QosReport> qos_reports;
  std::vector<std::pair<transport::VcId, transport::QosTolerance>> reneg_indications;
  std::vector<std::pair<bool, transport::QosParams>> reneg_confirms;

  void t_connect_indication(transport::VcId vc, const transport::ConnectRequest& req) override {
    connect_indications.push_back({vc, req});
    entity_->connect_response(vc, accept_connects, narrow);
  }
  void t_connect_confirm(transport::VcId vc, const transport::QosParams& agreed) override {
    confirms.emplace_back(vc, agreed);
  }
  void t_disconnect_indication(transport::VcId vc,
                               transport::DisconnectReason reason) override {
    disconnects.emplace_back(vc, reason);
  }
  void t_qos_indication(transport::VcId, const transport::QosReport& report) override {
    qos_reports.push_back(report);
  }
  void t_renegotiate_indication(transport::VcId vc,
                                const transport::QosTolerance& proposed) override {
    reneg_indications.emplace_back(vc, proposed);
    entity_->renegotiate_response(vc, accept_renegotiations);
  }
  void t_renegotiate_confirm(transport::VcId, bool accepted,
                             const transport::QosParams& agreed) override {
    reneg_confirms.emplace_back(accepted, agreed);
  }

 private:
  transport::TransportEntity* entity_;
};

/// A plain QoS request: `rate` OSDUs/s of `size`-byte OSDUs, generous
/// delay budget, conventional (initiator == source) addressing.
inline transport::ConnectRequest basic_request(net::NetAddress src, net::NetAddress dst,
                                               double rate = 25.0, std::int64_t size = 4096) {
  transport::ConnectRequest req;
  req.initiator = src;
  req.src = src;
  req.dst = dst;
  req.qos.preferred.osdu_rate = rate;
  req.qos.preferred.max_osdu_bytes = size;
  req.qos.preferred.end_to_end_delay = 200 * kMillisecond;
  req.qos.preferred.delay_jitter = 50 * kMillisecond;
  req.qos.preferred.packet_error_rate = 0.02;
  req.qos.preferred.bit_error_rate = 1e-5;
  req.qos.worst = req.qos.preferred;
  req.qos.worst.osdu_rate = rate / 4;
  req.qos.worst.end_to_end_delay = kSecond;
  req.qos.worst.delay_jitter = 200 * kMillisecond;
  req.qos.worst.packet_error_rate = 0.1;
  req.qos.worst.bit_error_rate = 1e-3;
  return req;
}

}  // namespace cmtos::test
