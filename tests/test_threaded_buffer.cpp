// Real-concurrency tests for the §3.7 shared circular buffer
// (std::counting_semaphore contention between true threads).

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "transport/threaded_buffer.h"

namespace cmtos::transport {
namespace {

Osdu make(std::uint32_t seq, std::size_t bytes = 64) {
  Osdu o;
  o.seq = seq;
  o.data = cmtos::PayloadView::adopt(
      std::vector<std::uint8_t>(bytes, static_cast<std::uint8_t>(seq)));
  return o;
}

TEST(ThreadedBuffer, SingleThreadedFifo) {
  ThreadedStreamBuffer b(4);
  // One thread playing both SPSC roles: hold both role capabilities.
  ThreadRoleGuard prod(b.producer_role());
  ThreadRoleGuard cons(b.consumer_role());
  b.push(make(1));
  b.push(make(2));
  EXPECT_EQ(b.pop().seq, 1u);
  EXPECT_EQ(b.pop().seq, 2u);
}

TEST(ThreadedBuffer, AcquireReleaseZeroCopy) {
  ThreadedStreamBuffer b(2);
  ThreadRoleGuard prod(b.producer_role());
  ThreadRoleGuard cons(b.consumer_role());
  b.push(make(9, 128));
  Osdu* p = b.acquire();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 9u);
  EXPECT_EQ(p->data.size(), 128u);
  b.release();
}

TEST(ThreadedBuffer, TwoThreadsTransferEverythingInOrder) {
  constexpr int kCount = 50'000;
  ThreadedStreamBuffer b(64);
  std::vector<std::uint32_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    ThreadRoleGuard cons(b.consumer_role());
    for (int i = 0; i < kCount; ++i) received.push_back(b.pop().seq);
  });
  std::thread producer([&] {
    ThreadRoleGuard prod(b.producer_role());
    for (int i = 0; i < kCount; ++i) b.push(make(static_cast<std::uint32_t>(i), 16));
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)],
                                             static_cast<std::uint32_t>(i));
}

TEST(ThreadedBuffer, BlockingTimeAccumulatesForSlowConsumer) {
  // Deterministic form of "the producer outpaces the consumer": each
  // episode fills the ring uncontended, then the next push must block on
  // the full ring until a pop frees a slot (the statistic the orchestration
  // service consumes, §3.7/§6.3.1.2).  Assertions are on the contended-wait
  // counter and monotone accumulation, never on wall-clock thresholds,
  // which made the previous version flaky on loaded CI machines.
  ThreadedStreamBuffer b(2);
  // The main thread seeds the ring (producer role) and drains it (consumer
  // role); the spawned thread takes over the producer role for the one
  // contended push per episode, after the handshake.
  ThreadRoleGuard prod(b.producer_role());
  ThreadRoleGuard cons(b.consumer_role());
  std::int64_t prev_ns = 0;
  for (int episode = 1; episode <= 3; ++episode) {
    b.push(make(0));
    b.push(make(1));  // ring now full, both pushes uncontended
    std::atomic<bool> pushing{false};
    std::thread producer([&] {
      ThreadRoleGuard thread_prod(b.producer_role());
      pushing.store(true);
      b.push(make(2));  // full ring: must wait for the pop below
    });
    while (!pushing.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(b.pop().seq, 0u);  // frees a slot, releases the producer
    producer.join();
    EXPECT_EQ(b.pop().seq, 1u);
    EXPECT_EQ(b.pop().seq, 2u);  // drain for the next episode
    EXPECT_EQ(b.producer_blocks(), episode);
    EXPECT_GT(b.producer_blocked_ns(), prev_ns);
    prev_ns = b.producer_blocked_ns();
  }
  EXPECT_EQ(b.consumer_blocks(), 0);
}

TEST(ThreadedBuffer, BlockingTimeAccumulatesForSlowProducer) {
  // Mirror image: each episode the consumer waits on the empty ring until
  // the delayed push arrives.  Same deterministic handshake-gated pattern.
  ThreadedStreamBuffer b(2);
  ThreadRoleGuard prod(b.producer_role());
  std::int64_t prev_ns = 0;
  for (int episode = 1; episode <= 3; ++episode) {
    std::atomic<bool> popping{false};
    std::thread consumer([&] {
      ThreadRoleGuard cons(b.consumer_role());
      popping.store(true);
      EXPECT_EQ(b.pop().seq, static_cast<std::uint32_t>(episode));  // empty ring: must wait
    });
    while (!popping.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.push(make(static_cast<std::uint32_t>(episode)));
    consumer.join();
    EXPECT_EQ(b.consumer_blocks(), episode);
    EXPECT_GT(b.consumer_blocked_ns(), prev_ns);
    prev_ns = b.consumer_blocked_ns();
  }
  EXPECT_EQ(b.producer_blocks(), 0);
}

TEST(ThreadedBuffer, ConsumerContendedWaitIsCounted) {
  // The semaphore's try_acquire fast path spins briefly, so contention
  // only registers when the peer is genuinely absent.  Gate the pop on a
  // handshake flag and delay the push well past the spin window; assert on
  // the contended-wait *counter* (not a wall-clock threshold), which stays
  // robust on loaded CI machines.
  ThreadedStreamBuffer b(2);
  ThreadRoleGuard prod(b.producer_role());
  std::atomic<bool> popping{false};
  std::thread consumer([&] {
    ThreadRoleGuard cons(b.consumer_role());
    popping.store(true);
    EXPECT_EQ(b.pop().seq, 7u);
  });
  while (!popping.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.push(make(7));
  consumer.join();
  EXPECT_EQ(b.consumer_blocks(), 1);
  EXPECT_GT(b.consumer_blocked_ns(), 0);
  EXPECT_EQ(b.producer_blocks(), 0);
}

TEST(ThreadedBuffer, ProducerContendedWaitIsCounted) {
  ThreadedStreamBuffer b(1);
  ThreadRoleGuard cons(b.consumer_role());
  {
    ThreadRoleGuard seed_prod(b.producer_role());
    b.push(make(0));  // fills the ring uncontended
  }
  std::atomic<bool> pushing{false};
  std::thread producer([&] {
    ThreadRoleGuard prod(b.producer_role());
    pushing.store(true);
    b.push(make(1));  // ring full: must wait for the pop
  });
  while (!pushing.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(b.pop().seq, 0u);
  producer.join();
  EXPECT_EQ(b.pop().seq, 1u);
  EXPECT_EQ(b.producer_blocks(), 1);
  EXPECT_GT(b.producer_blocked_ns(), 0);
}

TEST(ThreadedBuffer, CapacityOneDegenerate) {
  ThreadedStreamBuffer b(1);
  std::thread consumer([&] {
    ThreadRoleGuard cons(b.consumer_role());
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(b.pop().seq, static_cast<std::uint32_t>(i));
  });
  std::thread producer([&] {
    ThreadRoleGuard prod(b.producer_role());
    for (int i = 0; i < 1000; ++i) b.push(make(static_cast<std::uint32_t>(i), 8));
  });
  producer.join();
  consumer.join();
}

}  // namespace
}  // namespace cmtos::transport
