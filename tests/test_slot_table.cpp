// FlatMap / SlotTable unit tests: map semantics, churn without allocation
// drift, deterministic slab-order iteration, and stale-handle detection.
#include "util/slot_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace {

using cmtos::FlatMap;
using cmtos::SlotTable;

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7u), m.end());

  auto [it, fresh] = m.emplace(7u, 42);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, 42);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(7u));
  EXPECT_EQ(m.at(7u), 42);

  auto [it2, fresh2] = m.emplace(7u, 99);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(it2->second, 42);  // emplace does not overwrite

  m[7u] = 43;
  EXPECT_EQ(m.at(7u), 43);
  m[8u] = 80;
  EXPECT_EQ(m.size(), 2u);

  EXPECT_EQ(m.erase(7u), 1u);
  EXPECT_EQ(m.erase(7u), 0u);
  EXPECT_FALSE(m.contains(7u));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_THROW(m.at(7u), std::out_of_range);
}

TEST(FlatMap, InsertOrAssign) {
  FlatMap<int, std::string> m;
  auto r1 = m.insert_or_assign(1, std::string("a"));
  EXPECT_TRUE(r1.second);
  auto r2 = m.insert_or_assign(1, std::string("b"));
  EXPECT_FALSE(r2.second);
  EXPECT_EQ(m.at(1), "b");
}

TEST(FlatMap, MoveOnlyValues) {
  FlatMap<std::uint64_t, std::unique_ptr<int>> m;
  m.emplace(1u, std::make_unique<int>(10));
  m.emplace(2u, std::make_unique<int>(20));
  auto it = m.find(1u);
  ASSERT_NE(it, m.end());
  auto owned = std::move(it->second);
  m.erase(it);
  EXPECT_EQ(*owned, 10);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.at(2u), 20);
}

TEST(FlatMap, EraseByIteratorReturnsNext) {
  FlatMap<int, int> m;
  for (int i = 0; i < 10; ++i) m.emplace(i, i * i);
  // Erase every entry via the erase(it) -> next idiom.
  std::size_t seen = 0;
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++seen;
      ++it;
    }
  }
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(m.size(), 5u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.contains(i), i % 2 == 1);
}

TEST(FlatMap, PairKeys) {
  FlatMap<std::pair<std::uint64_t, std::uint32_t>, int> m;
  m.emplace(std::make_pair(std::uint64_t{5}, std::uint32_t{1}), 51);
  m.emplace(std::make_pair(std::uint64_t{5}, std::uint32_t{2}), 52);
  EXPECT_EQ(m.at({5, 1}), 51);
  EXPECT_EQ(m.at({5, 2}), 52);
  EXPECT_FALSE(m.contains({6, 1}));
}

TEST(FlatMap, ChurnReusesSlotsWithoutGrowth) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(512);
  for (std::uint64_t i = 0; i < 256; ++i) m.emplace(i, 1);
  // Steady-state churn at a stable population: every insert after an erase
  // must reuse a recycled slab slot, so iteration span stays bounded.
  for (std::uint64_t round = 0; round < 10000; ++round) {
    m.erase(round % 256);
    m.emplace(1000000 + round, 2);
    m.erase(1000000 + round);
    m.emplace(round % 256, 1);
  }
  EXPECT_EQ(m.size(), 256u);
  std::size_t span = 0;
  for ([[maybe_unused]] auto& kv : m) ++span;
  EXPECT_EQ(span, 256u);
}

TEST(FlatMap, DifferentialVsStdMap) {
  // Random op soak: FlatMap must agree with std::map on every lookup and on
  // the full (sorted) contents after each batch.
  std::mt19937_64 rng(20260807);
  FlatMap<std::uint32_t, std::uint64_t> flat;
  std::map<std::uint32_t, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng() % 700);
    switch (rng() % 4) {
      case 0:
      case 1: {
        const std::uint64_t v = rng();
        flat.insert_or_assign(key, v);
        ref[key] = v;
        break;
      }
      case 2: {
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      }
      default: {
        auto fit = flat.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) {
          EXPECT_EQ(fit->second, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> got;
  for (const auto& kv : flat) got.emplace_back(kv.first, kv.second);
  std::sort(got.begin(), got.end());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> want(ref.begin(), ref.end());
  EXPECT_EQ(got, want);
}

TEST(FlatMap, IterationOrderIsOpSequenceDeterministic) {
  // Two maps fed the same op sequence iterate identically — the property the
  // --threads determinism oracle depends on.
  auto run = [] {
    FlatMap<std::uint64_t, int> m;
    std::mt19937_64 rng(42);
    for (int op = 0; op < 5000; ++op) {
      const std::uint64_t key = rng() % 300;
      if (rng() % 3 == 0) {
        m.erase(key);
      } else {
        m.emplace(key, op);
      }
    }
    std::vector<std::uint64_t> order;
    for (const auto& kv : m) order.push_back(kv.first);
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(SlotTable, HandleLifecycle) {
  SlotTable<std::string> t;
  auto h1 = t.emplace("one");
  auto h2 = t.emplace("two");
  EXPECT_TRUE(h1.valid());
  ASSERT_NE(t.get(h1), nullptr);
  EXPECT_EQ(*t.get(h1), "one");
  EXPECT_EQ(*t.get(h2), "two");
  EXPECT_EQ(t.size(), 2u);

  EXPECT_TRUE(t.erase(h1));
  EXPECT_EQ(t.get(h1), nullptr);   // stale handle detected, not aliased
  EXPECT_FALSE(t.erase(h1));       // double-erase is a no-op
  EXPECT_EQ(t.size(), 1u);

  // The freed slot is recycled under a new generation; the old handle still
  // misses even though the index now holds a live value again.
  auto h3 = t.emplace("three");
  EXPECT_EQ(h3.idx, h1.idx);
  EXPECT_NE(h3.gen, h1.gen);
  EXPECT_EQ(t.get(h1), nullptr);
  EXPECT_EQ(*t.get(h3), "three");
}

TEST(SlotTable, PackUnpackRoundTrip) {
  SlotTable<int> t;
  auto h = t.emplace(5);
  const std::uint64_t id = h.pack();
  EXPECT_NE(id, 0u);  // 0 is reserved for "no reservation"
  EXPECT_EQ(SlotTable<int>::Handle::unpack(id), h);
  EXPECT_FALSE(SlotTable<int>::Handle::unpack(0).valid());
}

TEST(SlotTable, ForEachVisitsLiveInSlabOrder) {
  SlotTable<int> t;
  std::vector<SlotTable<int>::Handle> hs;
  for (int i = 0; i < 8; ++i) hs.push_back(t.emplace(i));
  t.erase(hs[2]);
  t.erase(hs[5]);
  std::vector<int> seen;
  t.for_each([&](SlotTable<int>::Handle, int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 3, 4, 6, 7}));
}

TEST(SlotTable, ClearInvalidatesAllHandles) {
  SlotTable<int> t;
  auto h1 = t.emplace(1);
  auto h2 = t.emplace(2);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.get(h1), nullptr);
  EXPECT_EQ(t.get(h2), nullptr);
}

}  // namespace
