// Tests for Table 3: dynamic QoS renegotiation — upgrades, downgrades,
// rejection semantics (the VC survives), reservation accounting, and
// initiation from either endpoint.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using transport::DisconnectReason;
using transport::QosParams;
using transport::QosTolerance;
using transport::VcId;

struct RenegWorld {
  RenegWorld() : star(2) {
    h0 = star.leaves[0];
    h1 = star.leaves[1];
    src_user = std::make_unique<ScriptedUser>(h0->entity);
    dst_user = std::make_unique<ScriptedUser>(h1->entity);
    h0->entity.bind(10, src_user.get());
    h1->entity.bind(20, dst_user.get());
    vc = h0->entity.t_connect_request(basic_request({h0->id, 10}, {h1->id, 20}, 10.0, 2048));
    star.platform.run_until(200 * kMillisecond);
  }
  QosTolerance tol(double rate, std::int64_t size) {
    auto req = basic_request({h0->id, 10}, {h1->id, 20}, rate, size);
    return req.qos;
  }
  StarPlatform star;
  platform::Host* h0 = nullptr;
  platform::Host* h1 = nullptr;
  std::unique_ptr<ScriptedUser> src_user, dst_user;
  VcId vc = transport::kInvalidVc;
};

TEST(Renegotiate, SourceInitiatedUpgrade) {
  RenegWorld w;
  ASSERT_NE(w.h0->entity.source(w.vc), nullptr);
  const auto before = w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id);

  w.h0->entity.t_renegotiate_request(w.vc, w.tol(40.0, 2048));
  w.star.platform.run_until(kSecond);

  // Fully confirmed: sink user saw the indication, source user the confirm.
  ASSERT_EQ(w.dst_user->reneg_indications.size(), 1u);
  ASSERT_EQ(w.src_user->reneg_confirms.size(), 1u);
  EXPECT_TRUE(w.src_user->reneg_confirms[0].first);
  EXPECT_NEAR(w.src_user->reneg_confirms[0].second.osdu_rate, 40.0, 1e-9);
  // Both endpoints carry the new contract.
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 40.0, 1e-9);
  EXPECT_NEAR(w.h1->entity.sink(w.vc)->agreed_qos().osdu_rate, 40.0, 1e-9);
  // Reservation grew.
  EXPECT_GT(w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id), before);
}

TEST(Renegotiate, SourceInitiatedDowngradeShrinksReservation) {
  RenegWorld w;
  const auto before = w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id);
  w.h0->entity.t_renegotiate_request(w.vc, w.tol(2.5, 2048));
  w.star.platform.run_until(kSecond);
  ASSERT_EQ(w.src_user->reneg_confirms.size(), 1u);
  EXPECT_TRUE(w.src_user->reneg_confirms[0].first);
  EXPECT_LT(w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id), before);
}

TEST(Renegotiate, PeerRejectionKeepsVcAndRollsBackReservation) {
  RenegWorld w;
  w.dst_user->accept_renegotiations = false;
  const auto before = w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id);

  w.h0->entity.t_renegotiate_request(w.vc, w.tol(40.0, 2048));
  w.star.platform.run_until(kSecond);

  // §4.1.3: rejection arrives as T-Disconnect.indication, but the VC is
  // NOT torn down.
  ASSERT_EQ(w.src_user->disconnects.size(), 1u);
  EXPECT_EQ(w.src_user->disconnects[0].second, DisconnectReason::kRenegotiationFailed);
  EXPECT_NE(w.h0->entity.source(w.vc), nullptr);
  EXPECT_NE(w.h1->entity.sink(w.vc), nullptr);
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 10.0, 1e-9);
  EXPECT_EQ(w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id), before);
}

TEST(Renegotiate, InsufficientBandwidthFailsWithoutTeardown) {
  RenegWorld w;
  // Ask for far more than the 10 Mbit/s link can reserve.
  w.h0->entity.t_renegotiate_request(w.vc, w.tol(2000.0, 8192));
  w.star.platform.run_until(kSecond);
  ASSERT_EQ(w.src_user->disconnects.size(), 1u);
  EXPECT_EQ(w.src_user->disconnects[0].second, DisconnectReason::kRenegotiationFailed);
  EXPECT_NE(w.h0->entity.source(w.vc), nullptr);
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 10.0, 1e-9);
}

TEST(Renegotiate, SinkInitiated) {
  RenegWorld w;
  w.h1->entity.t_renegotiate_request(w.vc, w.tol(20.0, 2048));
  w.star.platform.run_until(kSecond);
  // The source user is asked (it owns the sending side) ...
  ASSERT_EQ(w.src_user->reneg_indications.size(), 1u);
  // ... and the sink user gets the confirm.
  ASSERT_EQ(w.dst_user->reneg_confirms.size(), 1u);
  EXPECT_TRUE(w.dst_user->reneg_confirms[0].first);
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 20.0, 1e-9);
  EXPECT_NEAR(w.h1->entity.sink(w.vc)->agreed_qos().osdu_rate, 20.0, 1e-9);
}

TEST(Renegotiate, SinkInitiatedRejectedBySourceUser) {
  RenegWorld w;
  w.src_user->accept_renegotiations = false;
  w.h1->entity.t_renegotiate_request(w.vc, w.tol(20.0, 2048));
  w.star.platform.run_until(kSecond);
  ASSERT_EQ(w.dst_user->disconnects.size(), 1u);
  EXPECT_EQ(w.dst_user->disconnects[0].second, DisconnectReason::kRenegotiationFailed);
  EXPECT_NE(w.h1->entity.sink(w.vc), nullptr);  // VC survives
}

TEST(Renegotiate, DegradedRateWithinToleranceAccepted) {
  // Fill most of the link, then ask for more than remains: negotiation
  // lands between preferred and worst rather than failing outright.
  RenegWorld w;
  auto hog = w.star.platform.network().reserve(
      w.h0->id, w.h1->id, w.star.platform.network().available_bps(w.h0->id, w.h1->id) -
                              2'000'000);
  ASSERT_TRUE(hog.has_value());

  auto tol = w.tol(100.0, 2048);  // preferred needs ~1.8 Mbit/s... fits
  tol.worst.osdu_rate = 5.0;
  w.h0->entity.t_renegotiate_request(w.vc, tol);
  w.star.platform.run_until(kSecond);
  ASSERT_EQ(w.src_user->reneg_confirms.size(), 1u);
  const QosParams agreed = w.src_user->reneg_confirms[0].second;
  EXPECT_GE(agreed.osdu_rate, 5.0);
  EXPECT_LE(agreed.required_bps(), 2'000'000 + w.h0->entity.source(w.vc) ? INT64_MAX : 0);
}

TEST(Renegotiate, DataFlowsAtNewRateAfterUpgrade) {
  RenegWorld w;
  auto* source = w.h0->entity.source(w.vc);
  auto* sink = w.h1->entity.sink(w.vc);
  ASSERT_NE(source, nullptr);

  // Measures delivery rate over one second of saturated offered load.
  // Full-size (max_osdu_bytes) payloads make the byte-based pacer's OSDU
  // rate match the contracted OSDU rate.
  auto measure_rate = [&]() -> double {
    const Time t0 = w.star.platform.scheduler().now();
    std::int64_t delivered = 0;
    for (int round = 0; round < 20; ++round) {
      while (source->submit(std::vector<std::uint8_t>(2000, 1))) {
      }
      w.star.platform.run_until(w.star.platform.scheduler().now() + 50 * kMillisecond);
      while (sink->receive()) ++delivered;
    }
    return static_cast<double>(delivered) / to_seconds(w.star.platform.scheduler().now() - t0);
  };

  const double rate_before = measure_rate();
  EXPECT_NEAR(rate_before, 10.0, 4.0);

  w.h0->entity.t_renegotiate_request(w.vc, w.tol(50.0, 2048));
  w.star.platform.run_until(w.star.platform.scheduler().now() + 300 * kMillisecond);
  while (sink->receive()) {
  }
  const double rate_after = measure_rate();
  EXPECT_GT(rate_after, rate_before * 3);
  EXPECT_NEAR(rate_after, 50.0, 15.0);
}

// --- RN TPDU loss mid-storm (robustness) ---

TEST(RenegotiateLoss, DroppedRnIsRetransmittedAndSucceeds) {
  RenegWorld w;
  auto* link = w.star.platform.network().link(w.h0->id, w.star.hub->id);
  ASSERT_NE(link, nullptr);

  // Black out the link just long enough to eat the first RN, then heal it
  // before the handshake retransmit fires.
  link->set_loss_rate(1.0);
  w.h0->entity.t_renegotiate_request(w.vc, w.tol(20.0, 2048));
  w.star.platform.run_until(w.star.platform.scheduler().now() + 100 * kMillisecond);
  EXPECT_TRUE(w.src_user->reneg_confirms.empty());
  link->set_loss_rate(0.0);
  w.star.platform.run_until(w.star.platform.scheduler().now() + 2 * kSecond);

  ASSERT_EQ(w.src_user->reneg_confirms.size(), 1u);
  EXPECT_TRUE(w.src_user->reneg_confirms[0].first);
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 20.0, 1e-9);
  EXPECT_NEAR(w.h1->entity.sink(w.vc)->agreed_qos().osdu_rate, 20.0, 1e-9);
  EXPECT_TRUE(w.src_user->disconnects.empty());
}

TEST(RenegotiateLoss, SustainedLossFailsAfterRetriesButVcSurvives) {
  RenegWorld w;
  auto* link = w.star.platform.network().link(w.h0->id, w.star.hub->id);
  const auto before = w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id);

  // Every RN (initial + all retries) is lost: the renegotiation must give
  // up with kRenegotiationFailed, the VC must survive under the old
  // contract, and the pre-raised reservation must be rolled back.
  link->set_loss_rate(1.0);
  w.h0->entity.t_renegotiate_request(w.vc, w.tol(40.0, 2048));
  w.star.platform.run_until(w.star.platform.scheduler().now() + 6 * kSecond);
  link->set_loss_rate(0.0);

  ASSERT_EQ(w.src_user->disconnects.size(), 1u);
  EXPECT_EQ(w.src_user->disconnects[0].second, DisconnectReason::kRenegotiationFailed);
  ASSERT_NE(w.h0->entity.source(w.vc), nullptr);  // VC survives (§4.1.3)
  ASSERT_NE(w.h1->entity.sink(w.vc), nullptr);
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 10.0, 1e-9);
  EXPECT_EQ(w.star.platform.network().reserved_on(w.h0->id, w.star.hub->id), before);

  // The survivor is fully usable: a later renegotiation over the healed
  // link goes through.
  w.h0->entity.t_renegotiate_request(w.vc, w.tol(20.0, 2048));
  w.star.platform.run_until(w.star.platform.scheduler().now() + 2 * kSecond);
  ASSERT_FALSE(w.src_user->reneg_confirms.empty());
  EXPECT_TRUE(w.src_user->reneg_confirms.back().first);
  EXPECT_NEAR(w.h0->entity.source(w.vc)->agreed_qos().osdu_rate, 20.0, 1e-9);
}

TEST(Renegotiate, UnknownVcIsIgnoredSafely) {
  RenegWorld w;
  w.h0->entity.t_renegotiate_request(0xdeadbeef, w.tol(20.0, 2048));
  w.star.platform.run_until(kSecond);
  EXPECT_TRUE(w.src_user->reneg_confirms.empty());
  EXPECT_TRUE(w.src_user->disconnects.empty());
}

}  // namespace
}  // namespace cmtos::test
