// LLO tests: Table 4 session management, Table 5 prime/start/stop/add/
// remove (Fig 7 time sequence, atomic start, flush semantics), Table 6
// regulate/delayed/event mechanics.

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using media::RenderConfig;
using media::RenderingSink;
using media::StoredMediaServer;
using media::TrackConfig;
using orch::OrchReason;
using orch::OrchSessionId;
using orch::OrchVcInfo;
using transport::VcId;

/// Server on leaf0 serving two tracks to sinks on leaf1, streams connected
/// and ready for orchestration from leaf1 (the common sink node).
struct OrchWorld {
  OrchWorld(bool auto_start = false, double drift_ppm_b = 0.0)
      : star(2,
             lan_link(), 99) {
    (void)drift_ppm_b;
    server_host = star.leaves[0];
    sink_host = star.leaves[1];
    p = &star.platform;

    server = std::make_unique<StoredMediaServer>(*p, *server_host, "server");
    TrackConfig video;
    video.track_id = 1;
    video.auto_start = auto_start;
    video.vbr.base_bytes = 2048;
    video_src = server->add_track(100, video);
    TrackConfig audio;
    audio.track_id = 2;
    audio.auto_start = auto_start;
    audio.vbr.base_bytes = 160;
    audio.vbr.gop = 0;
    audio_src = server->add_track(101, audio);

    RenderConfig vr;
    vr.expect_track = 1;
    video_sink = std::make_unique<RenderingSink>(*p, *sink_host, 200, vr);
    RenderConfig ar;
    ar.expect_track = 2;
    audio_sink = std::make_unique<RenderingSink>(*p, *sink_host, 201, ar);

    vstream = std::make_unique<platform::Stream>(*p, *sink_host, "v");
    astream = std::make_unique<platform::Stream>(*p, *sink_host, "a");
    platform::VideoQos vq;
    vq.frames_per_second = 25;
    platform::AudioQos aq;
    aq.blocks_per_second = 50;
    int connected = 0;
    vstream->connect(video_src, {sink_host->id, 200}, vq, {},
                     [&](bool ok, auto) { connected += ok; });
    astream->connect(audio_src, {sink_host->id, 201}, aq, {},
                     [&](bool ok, auto) { connected += ok; });
    p->run_until(500 * kMillisecond);
    EXPECT_EQ(connected, 2);
  }

  std::vector<OrchVcInfo> vcs() const {
    return {vstream->orch_spec().vc, astream->orch_spec().vc};
  }
  orch::Llo& llo() { return sink_host->llo; }

  StarPlatform star;
  platform::Platform* p = nullptr;
  platform::Host* server_host = nullptr;
  platform::Host* sink_host = nullptr;
  std::unique_ptr<StoredMediaServer> server;
  std::unique_ptr<RenderingSink> video_sink, audio_sink;
  std::unique_ptr<platform::Stream> vstream, astream;
  net::NetAddress video_src, audio_src;
};

TEST(LloSession, EstablishAndRelease) {
  OrchWorld w;
  bool ok = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { ok = o; });
  w.p->run_until(kSecond);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(w.llo().has_session(1));
  // OPDUs ride the per-connection internal control VCs: the reverse path
  // (sink toward server) already carries reserved control bandwidth.
  EXPECT_GT(w.p->network().reserved_on(w.sink_host->id, w.star.hub->id), 0);

  w.llo().orch_release(1);
  w.p->run_until(2 * kSecond);
  EXPECT_FALSE(w.llo().has_session(1));
  EXPECT_EQ(w.server_host->llo.local_vc_count(), 0u);
}

TEST(LloSession, RejectsUnknownVc) {
  OrchWorld w;
  auto vcs = w.vcs();
  vcs[0].vc = 0xdeadbeef;  // no such VC anywhere
  bool done = false, ok = true;
  w.llo().orch_request(2, vcs, [&](bool o, OrchReason r) {
    done = true;
    ok = o;
    EXPECT_EQ(r, OrchReason::kNoSuchVc);
  });
  w.p->run_until(kSecond);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

TEST(LloSession, RejectsWithoutCommonNode) {
  OrchWorld w;
  auto vcs = w.vcs();
  vcs[0].src_node = w.server_host->id;
  vcs[0].sink_node = w.server_host->id;  // claims neither endpoint here
  vcs[0].src_node = 99;
  vcs[0].sink_node = 98;
  bool ok = true;
  w.llo().orch_request(3, vcs, [&](bool o, OrchReason r) {
    ok = o;
    EXPECT_EQ(r, OrchReason::kNoCommonNode);
  });
  w.p->run_until(kSecond);
  EXPECT_FALSE(ok);
}

TEST(LloSession, TableSpaceExhaustionRejects) {
  OrchWorld w;
  w.server_host->llo.set_session_limit(1);
  bool ok1 = false;
  w.llo().orch_request(10, w.vcs(), [&](bool o, OrchReason) { ok1 = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(ok1);
  bool ok2 = true;
  OrchReason reason2 = OrchReason::kOk;
  w.llo().orch_request(11, w.vcs(), [&](bool o, OrchReason r) {
    ok2 = o;
    reason2 = r;
  });
  w.p->run_until(2 * kSecond);
  EXPECT_FALSE(ok2);
  EXPECT_EQ(reason2, OrchReason::kNoTableSpace);
}

TEST(LloPrime, FillsBuffersAndHoldsDelivery) {
  OrchWorld w;
  bool established = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { established = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(established);

  bool primed = false;
  w.llo().prime(1, false, [&](bool o, OrchReason) { primed = o; });
  w.p->run_until(3 * kSecond);
  ASSERT_TRUE(primed);

  // Receive buffers are full at both sinks, nothing delivered to the apps.
  auto* vconn = w.sink_host->entity.sink(w.vcs()[0].vc);
  auto* aconn = w.sink_host->entity.sink(w.vcs()[1].vc);
  ASSERT_NE(vconn, nullptr);
  EXPECT_TRUE(vconn->buffer().full());
  EXPECT_TRUE(aconn->buffer().full());
  EXPECT_EQ(w.video_sink->stats().frames_rendered, 0);
  EXPECT_EQ(w.audio_sink->stats().frames_rendered, 0);
  // The source threads produced and are now blocked by flow control.
  EXPECT_GT(w.server->stats(100).frames_produced, 0);
}

TEST(LloPrime, DenyPropagatesAsOrchDeny) {
  OrchWorld w;
  w.video_sink->set_deny_prime(true);
  bool established = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { established = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(established);

  bool done = false, ok = true;
  OrchReason reason = OrchReason::kOk;
  w.llo().prime(1, false, [&](bool o, OrchReason r) {
    done = true;
    ok = o;
    reason = r;
  });
  w.p->run_until(8 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(reason, OrchReason::kAppDenied);
}

TEST(LloStart, AtomicReleaseAfterPrime) {
  OrchWorld w;
  bool established = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { established = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(established);
  bool primed = false;
  w.llo().prime(1, false, [&](bool o, OrchReason) { primed = o; });
  w.p->run_until(3 * kSecond);
  ASSERT_TRUE(primed);

  bool started = false;
  std::map<VcId, std::int64_t> bases;
  w.llo().start(1, [&](bool o, const FlatMap<VcId, std::int64_t>& b) {
    started = o;
    for (const auto& [vc, base] : b) bases[vc] = base;
  });
  w.p->run_until(4 * kSecond);
  ASSERT_TRUE(started);
  // Start bases: the first OSDU each sink will deliver (0 for fresh VCs).
  ASSERT_EQ(bases.size(), 2u);
  EXPECT_EQ(bases.at(w.vcs()[0].vc), 0);
  EXPECT_EQ(bases.at(w.vcs()[1].vc), 0);

  w.p->run_until(6 * kSecond);
  EXPECT_GT(w.video_sink->stats().frames_rendered, 30);
  EXPECT_GT(w.audio_sink->stats().frames_rendered, 60);

  // Both started from frame 0 (no data lost while primed).
  EXPECT_EQ(w.video_sink->records().front().seq, 0u);
  EXPECT_EQ(w.audio_sink->records().front().seq, 0u);
  // And the two streams began within one video frame of each other.
  const Duration v0 = w.video_sink->records().front().true_time;
  const Duration a0 = w.audio_sink->records().front().true_time;
  EXPECT_LT(std::abs(v0 - a0), 40 * kMillisecond);
}

TEST(LloStop, FreezesBothStreamsAndDataSurvives) {
  OrchWorld w;
  bool est = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { est = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(est);
  bool primed = false;
  w.llo().prime(1, false, [&](bool o, OrchReason) { primed = o; });
  w.p->run_until(3 * kSecond);
  ASSERT_TRUE(primed);
  w.llo().start(1, nullptr);
  w.p->run_until(6 * kSecond);
  const auto v_before = w.video_sink->stats().frames_rendered;
  ASSERT_GT(v_before, 0);

  bool stopped = false;
  w.llo().stop(1, [&](bool o, OrchReason) { stopped = o; });
  w.p->run_until(6500 * kMillisecond);
  ASSERT_TRUE(stopped);
  const auto v_at_stop = w.video_sink->stats().frames_rendered;
  const auto a_at_stop = w.audio_sink->stats().frames_rendered;
  w.p->run_until(9 * kSecond);
  // Nothing rendered while stopped.
  EXPECT_EQ(w.video_sink->stats().frames_rendered, v_at_stop);
  EXPECT_EQ(w.audio_sink->stats().frames_rendered, a_at_stop);

  // Restart: play-out resumes from the next frame, no data lost.
  const auto last_v = w.video_sink->records().back().seq;
  w.llo().start(1, nullptr);
  w.p->run_until(12 * kSecond);
  EXPECT_GT(w.video_sink->stats().frames_rendered, v_at_stop + 20);
  // First frame after restart continues the sequence.
  bool found_next = false;
  for (const auto& r : w.video_sink->records()) {
    if (r.true_time > 9 * kSecond) {
      EXPECT_EQ(r.seq, last_v + 1);
      found_next = true;
      break;
    }
  }
  EXPECT_TRUE(found_next);
}

TEST(LloSeek, FlushingPrimeDiscardsStaleMedia) {
  OrchWorld w;
  bool est = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { est = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(est);
  bool primed = false;
  w.llo().prime(1, false, [&](bool o, OrchReason) { primed = o; });
  w.p->run_until(3 * kSecond);
  ASSERT_TRUE(primed);
  w.llo().start(1, nullptr);
  w.p->run_until(6 * kSecond);

  // Stop, seek both tracks to frame 500, re-prime with flush, start.
  w.llo().stop(1, nullptr);
  w.p->run_until(6500 * kMillisecond);
  w.server->seek(100, 500);
  w.server->seek(101, 500);
  bool reprimed = false;
  w.llo().prime(1, true, [&](bool o, OrchReason) { reprimed = o; });
  w.p->run_until(9 * kSecond);
  ASSERT_TRUE(reprimed);
  w.llo().start(1, nullptr);
  w.p->run_until(12 * kSecond);

  // §6.2.1: "a short burst of media buffered from the previous play would
  // be discernible" without the flush — with it, the first frame rendered
  // after restart is from the new position.
  bool checked = false;
  for (const auto& r : w.video_sink->records()) {
    if (r.true_time > 9 * kSecond) {
      EXPECT_GE(r.frame_index, 500u);
      checked = true;
      break;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(LloAddRemove, MembershipChanges) {
  OrchWorld w;
  bool est = false;
  // Start with only the video VC.
  w.llo().orch_request(1, {w.vcs()[0]}, [&](bool o, OrchReason) { est = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(est);

  bool added = false;
  w.llo().add(1, w.vcs()[1], [&](bool o, OrchReason) { added = o; });
  w.p->run_until(2 * kSecond);
  EXPECT_TRUE(added);

  bool removed = false;
  w.llo().remove(1, w.vcs()[0].vc, [&](bool o, OrchReason) { removed = o; });
  w.p->run_until(3 * kSecond);
  EXPECT_TRUE(removed);

  // Removing a VC must not freeze it (§6.2.4): start the remaining group;
  // the removed video VC flows freely because its producer auto-runs on
  // space — here just verify no crash and the audio VC still works.
  bool primed = false;
  w.llo().prime(1, false, [&](bool o, OrchReason) { primed = o; });
  w.p->run_until(5 * kSecond);
  EXPECT_TRUE(primed);
}

TEST(LloRemove, UnknownVcFails) {
  OrchWorld w;
  bool est = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { est = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(est);
  bool ok = true;
  OrchReason r = OrchReason::kOk;
  w.llo().remove(1, 0xabc, [&](bool o, OrchReason reason) {
    ok = o;
    r = reason;
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(r, OrchReason::kNoSuchVc);
}

TEST(LloEvent, PatternMatchRaisesIndication) {
  OrchWorld w;
  // Recreate the video track with an event every 100 frames.
  // (Simpler: new world with event_every configured.)
  StarPlatform star2(2, lan_link(), 7);
  platform::Platform& p = star2.platform;
  StoredMediaServer server(p, *star2.leaves[0], "s");
  TrackConfig t;
  t.track_id = 3;
  t.auto_start = true;
  t.event_every = 50;
  t.event_value = 0xbeef;
  t.vbr.base_bytes = 512;
  const auto src = server.add_track(100, t);
  RenderConfig rc;
  rc.expect_track = 3;
  RenderingSink sink(p, *star2.leaves[1], 200, rc);
  platform::Stream stream(p, *star2.leaves[1], "s");
  platform::VideoQos vq;
  vq.frames_per_second = 50;
  bool connected = false;
  stream.connect(src, {star2.leaves[1]->id, 200}, vq, {}, [&](bool ok, auto) { connected = ok; });
  p.run_until(500 * kMillisecond);
  ASSERT_TRUE(connected);

  auto& llo = star2.leaves[1]->llo;
  bool est = false;
  llo.orch_request(1, {stream.orch_spec().vc}, [&](bool o, OrchReason) { est = o; });
  p.run_until(kSecond);
  ASSERT_TRUE(est);

  std::vector<orch::EventIndication> events;
  llo.set_event_callback(1, [&](const orch::EventIndication& e) { events.push_back(e); });
  llo.register_event(1, stream.orch_spec().vc.vc, 0xbeef);
  p.run_until(6 * kSecond);

  ASSERT_GE(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_EQ(e.event_value, 0xbeefu);
    EXPECT_EQ(e.osdu_seq % 50, 0u);
    EXPECT_NE(e.osdu_seq, 0u);
  }
}

TEST(LloEvent, MaskedMatch) {
  // Pattern matching uses (event & mask) == pattern.
  StarPlatform star2(2, lan_link(), 8);
  platform::Platform& p = star2.platform;
  StoredMediaServer server(p, *star2.leaves[0], "s");
  TrackConfig t;
  t.track_id = 3;
  t.auto_start = true;
  t.event_every = 10;
  t.event_value = 0x1234;  // low 8 bits: 0x34
  t.vbr.base_bytes = 256;
  const auto src = server.add_track(100, t);
  RenderConfig rc;
  RenderingSink sink(p, *star2.leaves[1], 200, rc);
  platform::Stream stream(p, *star2.leaves[1], "s");
  platform::VideoQos vq;
  vq.frames_per_second = 50;
  stream.connect(src, {star2.leaves[1]->id, 200}, vq, {}, nullptr);
  p.run_until(500 * kMillisecond);

  auto& llo = star2.leaves[1]->llo;
  llo.orch_request(1, {stream.orch_spec().vc}, nullptr);
  p.run_until(kSecond);
  int matches = 0;
  llo.set_event_callback(1, [&](const orch::EventIndication&) { ++matches; });
  llo.register_event(1, stream.orch_spec().vc.vc, 0x34, 0xff);  // low byte only
  p.run_until(4 * kSecond);
  EXPECT_GT(matches, 5);
}

TEST(LloRegulate, ReportsPositionDropsAndBlockTimes) {
  OrchWorld w;
  bool est = false;
  w.llo().orch_request(1, w.vcs(), [&](bool o, OrchReason) { est = o; });
  w.p->run_until(kSecond);
  ASSERT_TRUE(est);
  w.llo().prime(1, false, nullptr);
  w.p->run_until(3 * kSecond);
  w.llo().start(1, nullptr);
  w.p->run_until(3500 * kMillisecond);

  std::vector<orch::RegulateIndication> inds;
  w.llo().set_regulate_callback(1, [&](const orch::RegulateIndication& i) { inds.push_back(i); });

  // Video plays at 25/s; ask for a plausible target over 400 ms.
  auto* vconn = w.sink_host->entity.sink(w.vcs()[0].vc);
  const std::int64_t cur = vconn->last_delivered_seq();
  w.llo().regulate(1, w.vcs()[0].vc, cur + 10, 2, 400 * kMillisecond, 77);
  w.p->run_until(5 * kSecond);

  ASSERT_EQ(inds.size(), 1u);
  EXPECT_EQ(inds[0].interval_id, 77u);
  EXPECT_EQ(inds[0].vc, w.vcs()[0].vc);
  EXPECT_FALSE(inds[0].partial);
  EXPECT_NEAR(static_cast<double>(inds[0].delivered_seq), static_cast<double>(cur + 10), 3.0);
  // The stored server pumps as fast as the ring accepts, so its producer
  // thread spent essentially the whole interval blocked on the full ring.
  EXPECT_GT(inds[0].src_app_blocked, 100 * kMillisecond);
}

TEST(LloRegulate, MaxDropZeroNeverDrops) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), nullptr);
  w.p->run_until(kSecond);
  w.llo().prime(1, false, nullptr);
  w.p->run_until(3 * kSecond);
  w.llo().start(1, nullptr);
  w.p->run_until(3500 * kMillisecond);

  std::vector<orch::RegulateIndication> inds;
  w.llo().set_regulate_callback(1, [&](const orch::RegulateIndication& i) { inds.push_back(i); });
  auto* vconn = w.sink_host->entity.sink(w.vcs()[0].vc);
  // Unreachable target (far ahead), but zero drop budget.
  w.llo().regulate(1, w.vcs()[0].vc, vconn->last_delivered_seq() + 1000, 0,
                   400 * kMillisecond, 1);
  w.p->run_until(5 * kSecond);
  ASSERT_EQ(inds.size(), 1u);
  EXPECT_EQ(inds[0].dropped, 0u);
  auto* src = w.server_host->entity.source(w.vcs()[0].vc);
  EXPECT_EQ(src->stats().osdus_dropped_at_source, 0);
}

TEST(LloRegulate, BehindTargetUsesBoundedDrops) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), nullptr);
  w.p->run_until(kSecond);
  w.llo().prime(1, false, nullptr);
  w.p->run_until(3 * kSecond);
  w.llo().start(1, nullptr);
  w.p->run_until(3500 * kMillisecond);

  std::vector<orch::RegulateIndication> inds;
  w.llo().set_regulate_callback(1, [&](const orch::RegulateIndication& i) { inds.push_back(i); });
  auto* vconn = w.sink_host->entity.sink(w.vcs()[0].vc);
  // Target far ahead with a budget of 5: exactly <=5 drops happen.
  w.llo().regulate(1, w.vcs()[0].vc, vconn->last_delivered_seq() + 1000, 5,
                   400 * kMillisecond, 2);
  w.p->run_until(5 * kSecond);
  ASSERT_EQ(inds.size(), 1u);
  EXPECT_GT(inds[0].dropped, 0u);
  EXPECT_LE(inds[0].dropped, 5u);
}

TEST(LloRegulate, AheadOfTargetHoldsDelivery) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), nullptr);
  w.p->run_until(kSecond);
  w.llo().prime(1, false, nullptr);
  w.p->run_until(3 * kSecond);
  w.llo().start(1, nullptr);
  w.p->run_until(3500 * kMillisecond);

  std::vector<orch::RegulateIndication> inds;
  w.llo().set_regulate_callback(1, [&](const orch::RegulateIndication& i) { inds.push_back(i); });
  auto* vconn = w.sink_host->entity.sink(w.vcs()[0].vc);
  const std::int64_t cur = vconn->last_delivered_seq();
  // Target: do not advance at all (hold).
  w.llo().regulate(1, w.vcs()[0].vc, cur, 0, 400 * kMillisecond, 3);
  w.p->run_until(4200 * kMillisecond);
  ASSERT_EQ(inds.size(), 1u);
  // Delivery was held to the target (1-2 frames of slack from slotting).
  EXPECT_LE(inds[0].delivered_seq, cur + 2);
  // After the interval the hold lifts and play-out resumes.
  w.p->run_until(6 * kSecond);
  EXPECT_GT(vconn->last_delivered_seq(), cur + 10);
}

// --- Session phase machine: every illegal primitive gets a distinct
// rejection reason (and the contract layer guards the transitions) --------

TEST(LloStateMachine, GroupOpBeforeEstablishmentIsNotEstablished) {
  OrchWorld w;
  // Issue the prime while Orch.request is still collecting acks: the
  // session object exists but is not yet established.
  w.llo().orch_request(1, w.vcs(), [](bool, OrchReason) {});
  bool done = false;
  w.llo().prime(1, false, [&](bool ok, OrchReason r) {
    done = true;
    EXPECT_FALSE(ok);
    EXPECT_EQ(r, OrchReason::kNotEstablished);
  });
  EXPECT_TRUE(done);  // rejected synchronously
  w.p->run_until(kSecond);  // establishment itself still completes
  EXPECT_TRUE(w.llo().has_session(1));
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kIdle);
}

TEST(LloStateMachine, OverlappingGroupOpsAreOpInProgress) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), [](bool, OrchReason) {});
  w.p->run_until(kSecond);
  w.llo().prime(1, false, [](bool, OrchReason) {});
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kPriming);
  bool done = false;
  w.llo().start(1, [&](bool ok, const auto&) {
    done = true;
    EXPECT_FALSE(ok);
  });
  EXPECT_TRUE(done);  // second op rejected while the first collects acks
}

TEST(LloStateMachine, StopWhenIdleIsIllegalTransition) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), [](bool, OrchReason) {});
  w.p->run_until(kSecond);
  ASSERT_EQ(w.llo().session_phase(1), orch::SessionPhase::kIdle);
  bool done = false;
  w.llo().stop(1, [&](bool ok, OrchReason r) {
    done = true;
    EXPECT_FALSE(ok);
    EXPECT_EQ(r, OrchReason::kIllegalTransition);
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kIdle);
}

TEST(LloStateMachine, AddOnReleasedSessionIsNoSession) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), [](bool, OrchReason) {});
  w.p->run_until(kSecond);
  w.llo().orch_release(1);
  w.p->run_until(2 * kSecond);
  ASSERT_FALSE(w.llo().has_session(1));
  bool done = false;
  w.llo().add(1, w.vcs()[0], [&](bool ok, OrchReason r) {
    done = true;
    EXPECT_FALSE(ok);
    EXPECT_EQ(r, OrchReason::kNoSession);
  });
  EXPECT_TRUE(done);
}

TEST(LloStateMachine, PhaseTracksPrimeStartStopLifecycle) {
  OrchWorld w;
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kEstablishing);  // unknown session
  w.llo().orch_request(1, w.vcs(), [](bool, OrchReason) {});
  w.p->run_until(kSecond);
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kIdle);

  w.llo().prime(1, false, [](bool, OrchReason) {});
  w.p->run_until(3 * kSecond);
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kPrimed);

  w.llo().start(1, [](bool, const auto&) {});
  w.p->run_until(4 * kSecond);
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kRunning);

  w.llo().stop(1, [](bool, OrchReason) {});
  w.p->run_until(5 * kSecond);
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kStopped);

  // Restart after stop needs no re-prime: data stayed buffered.
  w.llo().start(1, [](bool, const auto&) {});
  w.p->run_until(6 * kSecond);
  EXPECT_EQ(w.llo().session_phase(1), orch::SessionPhase::kRunning);
}

TEST(LloDelayed, ReachesApplicationThread) {
  OrchWorld w;
  w.llo().orch_request(1, w.vcs(), nullptr);
  w.p->run_until(kSecond);
  w.llo().delayed(1, w.vcs()[0].vc, true, 12);
  w.p->run_until(2 * kSecond);
  EXPECT_EQ(w.server->stats(100).delayed_indications, 1);
  w.llo().delayed(1, w.vcs()[0].vc, false, 5);
  w.p->run_until(3 * kSecond);
  EXPECT_EQ(w.video_sink->stats().delayed_indications, 1);
}

}  // namespace
}  // namespace cmtos::test
