// cmtos/tests/fuzz_pdu_libfuzzer.cpp
//
// Coverage-guided companion to fuzz_pdu.cpp: the same total-decoder
// surface exposed as a libFuzzer entry point.  Built only when
// -DCMTOS_BUILD_FUZZERS=ON under Clang (libFuzzer ships with it); the
// deterministic harness remains the tier-1 gate, this target is for
// longer exploratory runs:
//
//   ./fuzz_pdu_libfuzzer tests/fuzz_corpus -max_len=512
//
// Crashing inputs found here get committed to tests/fuzz_corpus/ so the
// deterministic replay keeps them fixed.

#include <cstddef>
#include <cstdint>
#include <span>

#include "orch/opdu.h"
#include "transport/tpdu.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> wire(data, size);
  // Every family sees every input: the decoders are total, so none may
  // crash, over-read, or allocate unboundedly on any byte string.
  (void)cmtos::transport::ControlTpdu::decode(wire);
  (void)cmtos::transport::DataTpdu::decode(wire);
  (void)cmtos::transport::AckTpdu::decode(wire);
  (void)cmtos::transport::NakTpdu::decode(wire);
  (void)cmtos::transport::FeedbackTpdu::decode(wire);
  (void)cmtos::transport::KeepaliveTpdu::decode(wire);
  (void)cmtos::transport::DatagramTpdu::decode(wire);
  (void)cmtos::orch::Opdu::decode(wire);
  (void)cmtos::transport::peek_type(wire);
  (void)cmtos::transport::peek_vc(wire);
  return 0;
}
