// Tests for Table 2: per-VC QoS monitoring over sample periods and the
// T-QoS.indication delivery paths (sink user, source user, distinct
// initiator).

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using transport::ErrorControl;
using transport::QosMonitor;
using transport::QosParams;
using transport::QosReport;
using transport::VcId;

QosParams contract() {
  QosParams p;
  p.osdu_rate = 50;
  p.max_osdu_bytes = 1024;
  p.end_to_end_delay = 100 * kMillisecond;
  p.delay_jitter = 20 * kMillisecond;
  p.packet_error_rate = 0.01;
  p.bit_error_rate = 1e-6;
  return p;
}

TEST(QosMonitorUnit, CleanPeriodNoViolation) {
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0, samples = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.set_on_sample([&](const QosReport&) { ++samples; });
  m.begin(0);
  for (int i = 0; i < 50; ++i) {
    m.on_osdu_completed(50 * kMillisecond);
    m.on_tpdu_received(1100);
  }
  m.end_period(1 * kSecond);
  EXPECT_EQ(samples, 1);
  EXPECT_EQ(violations, 0);
}

TEST(QosMonitorUnit, ThroughputViolationDetected) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_violation([&](const QosReport& r) { last = r; });
  m.begin(0);
  // 50 OSDUs were offered (seq span) but only 20 completed.
  for (std::uint32_t s = 0; s < 50; ++s) m.on_osdu_seen(s);
  for (int i = 0; i < 20; ++i) m.on_osdu_completed(50 * kMillisecond);
  m.end_period(1 * kSecond);
  EXPECT_TRUE(last.violations.throughput);
  EXPECT_NEAR(last.measured_osdu_rate, 20.0, 0.1);
  EXPECT_FALSE(last.violations.delay);
}

TEST(QosMonitorUnit, UnderfedApplicationIsNotAViolation) {
  // The user submitted only 20/s against a 50/s contract and all 20
  // arrived: the provider met the demand.
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.begin(0);
  for (std::uint32_t s = 0; s < 20; ++s) {
    m.on_osdu_seen(s);
    m.on_osdu_completed(50 * kMillisecond);
  }
  m.end_period(1 * kSecond);
  EXPECT_EQ(violations, 0);
}

TEST(QosMonitorUnit, DelayAndJitterViolations) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_violation([&](const QosReport& r) { last = r; });
  m.begin(0);
  for (int i = 0; i < 50; ++i)
    m.on_osdu_completed(150 * kMillisecond + (i % 2) * 30 * kMillisecond);
  m.end_period(1 * kSecond);
  EXPECT_TRUE(last.violations.delay);   // mean 165ms > 100ms
  EXPECT_TRUE(last.violations.jitter);  // 30ms spread > 20ms
}

TEST(QosMonitorUnit, ErrorRateViolations) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_violation([&](const QosReport& r) { last = r; });
  m.begin(0);
  for (int i = 0; i < 50; ++i) {
    m.on_osdu_completed(10 * kMillisecond);
    m.on_tpdu_received(1000);
  }
  m.on_tpdu_lost(5);   // 5/55 ~ 9% > 1%
  m.on_tpdu_corrupt();
  m.end_period(1 * kSecond);
  EXPECT_TRUE(last.violations.packet_errors);
  EXPECT_TRUE(last.violations.bit_errors);
}

TEST(QosMonitorUnit, WindowResetsBetweenPeriods) {
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.begin(0);
  // Bad period: 50 offered, 10 completed.
  for (std::uint32_t s = 0; s < 50; ++s) m.on_osdu_seen(s);
  for (int i = 0; i < 10; ++i) m.on_osdu_completed(10 * kMillisecond);
  m.end_period(1 * kSecond);
  EXPECT_EQ(violations, 1);
  // Healthy period: counters were reset, no carry-over violation.
  for (std::uint32_t s = 50; s < 105; ++s) {
    m.on_osdu_seen(s);
    m.on_osdu_completed(10 * kMillisecond);
  }
  m.end_period(2 * kSecond);
  EXPECT_EQ(violations, 1);
}

// --- end-to-end indication delivery ---

struct MonitoredWorld {
  MonitoredWorld() : star(3) {
    auto& h0 = *star.leaves[0];
    auto& h1 = *star.leaves[1];
    src_user = std::make_unique<ScriptedUser>(h0.entity);
    dst_user = std::make_unique<ScriptedUser>(h1.entity);
    h0.entity.bind(10, src_user.get());
    h1.entity.bind(20, dst_user.get());
  }
  StarPlatform star;
  std::unique_ptr<ScriptedUser> src_user, dst_user;
};

TEST(QosIndication, DegradationReachesSinkAndSourceUsers) {
  MonitoredWorld w;
  auto& h0 = *w.star.leaves[0];
  auto& h1 = *w.star.leaves[1];
  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 2048);
  req.sample_period = 500 * kMillisecond;
  req.service_class.error_control = ErrorControl::kIndicate;
  // Tight contract so induced loss breaks it.
  req.qos.preferred.packet_error_rate = 0.01;
  req.qos.worst.packet_error_rate = 0.01;
  const VcId vc = h0.entity.t_connect_request(req);
  w.star.platform.run_until(200 * kMillisecond);
  auto* source = h0.entity.source(vc);
  ASSERT_NE(source, nullptr);

  // Healthy traffic first, offered at the contract rate (a burst would
  // legitimately trip the delay bound via source queueing): no indications.
  auto feed = [&](int n) {
    for (int i = 0; i < n; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
  };
  for (int i = 0; i < 25; ++i) {
    feed(1);  // smooth 25/s: bursts would legitimately violate jitter
    w.star.platform.run_until(w.star.platform.scheduler().now() + 40 * kMillisecond);
    while (h1.entity.sink(vc)->receive()) {
    }
  }
  EXPECT_TRUE(w.dst_user->qos_reports.empty());

  // Now degrade the leaf0->hub link hard.
  w.star.platform.network().link(h0.id, w.star.hub->id)->set_loss_rate(0.5);
  for (int burst = 0; burst < 20; ++burst) {
    feed(5);
    w.star.platform.run_until(w.star.platform.scheduler().now() + 200 * kMillisecond);
    while (h1.entity.sink(vc) && h1.entity.sink(vc)->receive()) {
    }
  }

  ASSERT_FALSE(w.dst_user->qos_reports.empty());
  const QosReport& rep = w.dst_user->qos_reports.front();
  EXPECT_EQ(rep.vc, vc);
  EXPECT_TRUE(rep.violations.any());
  // Relay to the source user over the QI control TPDU (§4.1.2 lists the
  // source address in the primitive).
  EXPECT_FALSE(w.src_user->qos_reports.empty());
}

TEST(QosIndication, DistinctInitiatorAlsoNotified) {
  MonitoredWorld w;
  auto& h0 = *w.star.leaves[0];
  auto& h1 = *w.star.leaves[1];
  auto& h2 = *w.star.leaves[2];
  ScriptedUser initiator(h2.entity);
  h2.entity.bind(30, &initiator);

  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 2048);
  req.initiator = {h2.id, 30};
  req.sample_period = 500 * kMillisecond;
  req.qos.preferred.packet_error_rate = 0.01;
  req.qos.worst.packet_error_rate = 0.01;
  const VcId vc = h2.entity.t_connect_request(req);
  w.star.platform.run_until(300 * kMillisecond);
  auto* source = h0.entity.source(vc);
  ASSERT_NE(source, nullptr);

  w.star.platform.network().link(h0.id, w.star.hub->id)->set_loss_rate(0.5);
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 5; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
    w.star.platform.run_until(w.star.platform.scheduler().now() + 200 * kMillisecond);
    while (h1.entity.sink(vc) && h1.entity.sink(vc)->receive()) {
    }
  }
  EXPECT_FALSE(initiator.qos_reports.empty());
}

TEST(QosIndication, NoIndicationWithoutIndicateClass) {
  MonitoredWorld w;
  auto& h0 = *w.star.leaves[0];
  auto& h1 = *w.star.leaves[1];
  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 2048);
  req.sample_period = 500 * kMillisecond;
  req.service_class.error_control = ErrorControl::kNone;
  req.qos.preferred.packet_error_rate = 0.01;
  req.qos.worst.packet_error_rate = 0.01;
  const VcId vc = h0.entity.t_connect_request(req);
  w.star.platform.run_until(200 * kMillisecond);
  auto* source = h0.entity.source(vc);
  ASSERT_NE(source, nullptr);

  w.star.platform.network().link(h0.id, w.star.hub->id)->set_loss_rate(0.5);
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 5; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
    w.star.platform.run_until(w.star.platform.scheduler().now() + 200 * kMillisecond);
    while (h1.entity.sink(vc) && h1.entity.sink(vc)->receive()) {
    }
  }
  EXPECT_TRUE(w.dst_user->qos_reports.empty());
}

}  // namespace
}  // namespace cmtos::test
