// Tests for Table 2: per-VC QoS monitoring over sample periods and the
// T-QoS.indication delivery paths (sink user, source user, distinct
// initiator).

#include <gtest/gtest.h>

#include "fixtures.h"

namespace cmtos::test {
namespace {

using transport::ErrorControl;
using transport::QosMonitor;
using transport::QosParams;
using transport::QosReport;
using transport::VcId;

QosParams contract() {
  QosParams p;
  p.osdu_rate = 50;
  p.max_osdu_bytes = 1024;
  p.end_to_end_delay = 100 * kMillisecond;
  p.delay_jitter = 20 * kMillisecond;
  p.packet_error_rate = 0.01;
  p.bit_error_rate = 1e-6;
  return p;
}

TEST(QosMonitorUnit, CleanPeriodNoViolation) {
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0, samples = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.set_on_sample([&](const QosReport&) { ++samples; });
  m.begin(0);
  for (int i = 0; i < 50; ++i) {
    m.on_osdu_completed(50 * kMillisecond);
    m.on_tpdu_received(1100);
  }
  m.end_period(1 * kSecond);
  EXPECT_EQ(samples, 1);
  EXPECT_EQ(violations, 0);
}

TEST(QosMonitorUnit, ThroughputViolationDetected) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_violation([&](const QosReport& r) { last = r; });
  m.begin(0);
  // 50 OSDUs were offered (seq span) but only 20 completed.
  for (std::uint32_t s = 0; s < 50; ++s) m.on_osdu_seen(s);
  for (int i = 0; i < 20; ++i) m.on_osdu_completed(50 * kMillisecond);
  m.end_period(1 * kSecond);
  EXPECT_TRUE(last.violations.throughput);
  EXPECT_NEAR(last.measured_osdu_rate, 20.0, 0.1);
  EXPECT_FALSE(last.violations.delay);
}

TEST(QosMonitorUnit, UnderfedApplicationIsNotAViolation) {
  // The user submitted only 20/s against a 50/s contract and all 20
  // arrived: the provider met the demand.
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.begin(0);
  for (std::uint32_t s = 0; s < 20; ++s) {
    m.on_osdu_seen(s);
    m.on_osdu_completed(50 * kMillisecond);
  }
  m.end_period(1 * kSecond);
  EXPECT_EQ(violations, 0);
}

TEST(QosMonitorUnit, DelayAndJitterViolations) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_violation([&](const QosReport& r) { last = r; });
  m.begin(0);
  for (int i = 0; i < 50; ++i)
    m.on_osdu_completed(150 * kMillisecond + (i % 2) * 30 * kMillisecond);
  m.end_period(1 * kSecond);
  EXPECT_TRUE(last.violations.delay);   // mean 165ms > 100ms
  EXPECT_TRUE(last.violations.jitter);  // 30ms spread > 20ms
}

TEST(QosMonitorUnit, ErrorRateViolations) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_violation([&](const QosReport& r) { last = r; });
  m.begin(0);
  for (int i = 0; i < 50; ++i) {
    m.on_osdu_completed(10 * kMillisecond);
    m.on_tpdu_received(1000);
  }
  m.on_tpdu_lost(5);   // 5/55 ~ 9% > 1%
  m.on_tpdu_corrupt();
  m.end_period(1 * kSecond);
  EXPECT_TRUE(last.violations.packet_errors);
  EXPECT_TRUE(last.violations.bit_errors);
}

TEST(QosMonitorUnit, WindowResetsBetweenPeriods) {
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.begin(0);
  // Bad period: 50 offered, 10 completed.
  for (std::uint32_t s = 0; s < 50; ++s) m.on_osdu_seen(s);
  for (int i = 0; i < 10; ++i) m.on_osdu_completed(10 * kMillisecond);
  m.end_period(1 * kSecond);
  EXPECT_EQ(violations, 1);
  // Healthy period: counters were reset, no carry-over violation.
  for (std::uint32_t s = 50; s < 105; ++s) {
    m.on_osdu_seen(s);
    m.on_osdu_completed(10 * kMillisecond);
  }
  m.end_period(2 * kSecond);
  EXPECT_EQ(violations, 1);
}

// --- sequence-number wraparound (regression) ---
//
// The offered-load span is tracked with serial-number arithmetic; a naive
// max-min over raw uint32 seqs blows up to ~2^32 when a period straddles
// the wrap, making an underfed application look like a provider fault.

TEST(QosMonitorSeqWrap, WrapInsidePeriodDoesNotInflateOfferedLoad) {
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.begin(0);
  // 20 OSDUs against a 50/s contract, crossing the wrap halfway: the
  // provider delivered everything that was offered.
  for (std::uint32_t i = 0; i < 20; ++i) {
    m.on_osdu_seen(0xFFFFFFF6u + i);
    m.on_osdu_completed(10 * kMillisecond);
  }
  m.end_period(1 * kSecond);
  EXPECT_EQ(violations, 0);
}

TEST(QosMonitorSeqWrap, ReorderingAcrossWrapKeepsTrueSpan) {
  QosMonitor m(1, contract(), 1 * kSecond);
  QosReport last;
  m.set_on_sample([&](const QosReport& r) { last = r; });
  m.begin(0);
  for (std::uint32_t seq : {0xFFFFFFFEu, 1u, 0xFFFFFFFFu, 0u, 2u}) {
    m.on_osdu_seen(seq);
    m.on_osdu_completed(10 * kMillisecond);
  }
  m.end_period(1 * kSecond);
  EXPECT_FALSE(last.violations.throughput);
}

TEST(QosMonitorSeqWrap, BackwardResyncReAnchorsInsteadOfReporting) {
  // A flush resets the peer's sequence space: the huge backward jump is a
  // resync, not 10^6 OSDUs of unserved offered load.
  QosMonitor m(1, contract(), 1 * kSecond);
  int violations = 0;
  m.set_on_violation([&](const QosReport&) { ++violations; });
  m.begin(0);
  for (std::uint32_t i = 0; i < 10; ++i) {
    m.on_osdu_seen(1'000'000u + i);
    m.on_osdu_completed(10 * kMillisecond);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    m.on_osdu_seen(i);
    m.on_osdu_completed(10 * kMillisecond);
  }
  m.end_period(1 * kSecond);
  EXPECT_EQ(violations, 0);
}

// --- indication coalescing ---

class CoalescingFeeder {
 public:
  explicit CoalescingFeeder(QosMonitor& m) : m_(m) {}

  /// One period of sustained throughput violation (50 offered, 10 served),
  /// optionally also violating the delay bound.
  void violating_period(bool with_delay = false) {
    for (int i = 0; i < 50; ++i) m_.on_osdu_seen(next_seq_++);
    const Duration d = with_delay ? 150 * kMillisecond : 10 * kMillisecond;
    for (int i = 0; i < 10; ++i) m_.on_osdu_completed(d);
    end();
  }
  void clean_period() {
    for (int i = 0; i < 10; ++i) {
      m_.on_osdu_seen(next_seq_++);
      m_.on_osdu_completed(10 * kMillisecond);
    }
    end();
  }

 private:
  void end() {
    now_ += kSecond;
    m_.end_period(now_);
  }
  QosMonitor& m_;
  std::uint32_t next_seq_ = 0;
  Time now_ = 0;
};

TEST(QosMonitorCoalescing, SustainedRunEmitsFirstThenRefreshes) {
  QosMonitor m(1, contract(), 1 * kSecond);
  m.set_indication_repeat_every(4);
  std::vector<QosReport> emitted;
  m.set_on_violation([&](const QosReport& r) { emitted.push_back(r); });
  m.begin(0);
  CoalescingFeeder feed(m);
  for (int p = 0; p < 10; ++p) feed.violating_period();
  // Periods 1..10 all violate with an unchanged set: emissions at period 1
  // (run start) and refreshes at 5 and 9.
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0].consecutive_violation_periods, 1u);
  EXPECT_EQ(emitted[0].coalesced_periods, 0u);
  EXPECT_EQ(emitted[1].consecutive_violation_periods, 5u);
  EXPECT_EQ(emitted[1].coalesced_periods, 3u);  // periods 2..4 suppressed
  EXPECT_EQ(emitted[2].consecutive_violation_periods, 9u);
  EXPECT_EQ(emitted[2].coalesced_periods, 3u);  // periods 6..8 suppressed
}

TEST(QosMonitorCoalescing, ViolatedSetChangeBreaksSuppression) {
  QosMonitor m(1, contract(), 1 * kSecond);
  m.set_indication_repeat_every(8);
  std::vector<QosReport> emitted;
  m.set_on_violation([&](const QosReport& r) { emitted.push_back(r); });
  m.begin(0);
  CoalescingFeeder feed(m);
  feed.violating_period();                  // throughput only -> emit
  feed.violating_period();                  // same set -> suppressed
  feed.violating_period(/*with_delay=*/true);  // set grew -> emit now
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_FALSE(emitted[0].violations.delay);
  EXPECT_TRUE(emitted[1].violations.delay);
  EXPECT_EQ(emitted[1].consecutive_violation_periods, 3u);
}

TEST(QosMonitorCoalescing, CleanPeriodResetsTheRun) {
  QosMonitor m(1, contract(), 1 * kSecond);
  std::vector<QosReport> emitted;
  m.set_on_violation([&](const QosReport& r) { emitted.push_back(r); });
  m.begin(0);
  CoalescingFeeder feed(m);
  feed.violating_period();
  feed.clean_period();
  feed.violating_period();
  // Both violating periods start a fresh run: both emit immediately.
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1].consecutive_violation_periods, 1u);
  EXPECT_EQ(emitted[1].coalesced_periods, 0u);
}

TEST(QosMonitorCoalescing, RenegotiationRestartsTheRun) {
  QosMonitor m(1, contract(), 1 * kSecond);
  std::vector<QosReport> emitted;
  m.set_on_violation([&](const QosReport& r) { emitted.push_back(r); });
  m.begin(0);
  CoalescingFeeder feed(m);
  feed.violating_period();
  feed.violating_period();  // suppressed
  // Unit test drives the rebaseline directly.  cmtos-lint: allow(qos-set-agreed)
  m.set_agreed(contract());  // contract changed: old history judged old terms
  feed.violating_period();
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1].consecutive_violation_periods, 1u);
}

// --- end-to-end indication delivery ---

struct MonitoredWorld {
  MonitoredWorld() : star(3) {
    auto& h0 = *star.leaves[0];
    auto& h1 = *star.leaves[1];
    src_user = std::make_unique<ScriptedUser>(h0.entity);
    dst_user = std::make_unique<ScriptedUser>(h1.entity);
    h0.entity.bind(10, src_user.get());
    h1.entity.bind(20, dst_user.get());
  }
  StarPlatform star;
  std::unique_ptr<ScriptedUser> src_user, dst_user;
};

TEST(QosIndication, DegradationReachesSinkAndSourceUsers) {
  MonitoredWorld w;
  auto& h0 = *w.star.leaves[0];
  auto& h1 = *w.star.leaves[1];
  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 2048);
  req.sample_period = 500 * kMillisecond;
  req.service_class.error_control = ErrorControl::kIndicate;
  // Tight contract so induced loss breaks it.
  req.qos.preferred.packet_error_rate = 0.01;
  req.qos.worst.packet_error_rate = 0.01;
  const VcId vc = h0.entity.t_connect_request(req);
  w.star.platform.run_until(200 * kMillisecond);
  auto* source = h0.entity.source(vc);
  ASSERT_NE(source, nullptr);

  // Healthy traffic first, offered at the contract rate (a burst would
  // legitimately trip the delay bound via source queueing): no indications.
  auto feed = [&](int n) {
    for (int i = 0; i < n; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
  };
  for (int i = 0; i < 25; ++i) {
    feed(1);  // smooth 25/s: bursts would legitimately violate jitter
    w.star.platform.run_until(w.star.platform.scheduler().now() + 40 * kMillisecond);
    while (h1.entity.sink(vc)->receive()) {
    }
  }
  EXPECT_TRUE(w.dst_user->qos_reports.empty());

  // Now degrade the leaf0->hub link hard.
  w.star.platform.network().link(h0.id, w.star.hub->id)->set_loss_rate(0.5);
  for (int burst = 0; burst < 20; ++burst) {
    feed(5);
    w.star.platform.run_until(w.star.platform.scheduler().now() + 200 * kMillisecond);
    while (h1.entity.sink(vc) && h1.entity.sink(vc)->receive()) {
    }
  }

  ASSERT_FALSE(w.dst_user->qos_reports.empty());
  const QosReport& rep = w.dst_user->qos_reports.front();
  EXPECT_EQ(rep.vc, vc);
  EXPECT_TRUE(rep.violations.any());
  // Relay to the source user over the QI control TPDU (§4.1.2 lists the
  // source address in the primitive).
  EXPECT_FALSE(w.src_user->qos_reports.empty());
}

TEST(QosIndication, DistinctInitiatorAlsoNotified) {
  MonitoredWorld w;
  auto& h0 = *w.star.leaves[0];
  auto& h1 = *w.star.leaves[1];
  auto& h2 = *w.star.leaves[2];
  ScriptedUser initiator(h2.entity);
  h2.entity.bind(30, &initiator);

  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 2048);
  req.initiator = {h2.id, 30};
  req.sample_period = 500 * kMillisecond;
  req.qos.preferred.packet_error_rate = 0.01;
  req.qos.worst.packet_error_rate = 0.01;
  const VcId vc = h2.entity.t_connect_request(req);
  w.star.platform.run_until(300 * kMillisecond);
  auto* source = h0.entity.source(vc);
  ASSERT_NE(source, nullptr);

  w.star.platform.network().link(h0.id, w.star.hub->id)->set_loss_rate(0.5);
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 5; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
    w.star.platform.run_until(w.star.platform.scheduler().now() + 200 * kMillisecond);
    while (h1.entity.sink(vc) && h1.entity.sink(vc)->receive()) {
    }
  }
  EXPECT_FALSE(initiator.qos_reports.empty());
}

TEST(QosIndication, NoIndicationWithoutIndicateClass) {
  MonitoredWorld w;
  auto& h0 = *w.star.leaves[0];
  auto& h1 = *w.star.leaves[1];
  auto req = basic_request({h0.id, 10}, {h1.id, 20}, 25.0, 2048);
  req.sample_period = 500 * kMillisecond;
  req.service_class.error_control = ErrorControl::kNone;
  req.qos.preferred.packet_error_rate = 0.01;
  req.qos.worst.packet_error_rate = 0.01;
  const VcId vc = h0.entity.t_connect_request(req);
  w.star.platform.run_until(200 * kMillisecond);
  auto* source = h0.entity.source(vc);
  ASSERT_NE(source, nullptr);

  w.star.platform.network().link(h0.id, w.star.hub->id)->set_loss_rate(0.5);
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 5; ++i) (void)source->submit(std::vector<std::uint8_t>(500, 1));
    w.star.platform.run_until(w.star.platform.scheduler().now() + 200 * kMillisecond);
    while (h1.entity.sink(vc) && h1.entity.sink(vc)->receive()) {
    }
  }
  EXPECT_TRUE(w.dst_user->qos_reports.empty());
}

}  // namespace
}  // namespace cmtos::test
