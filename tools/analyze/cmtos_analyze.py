#!/usr/bin/env python3
"""cmtos-analyze: AST-aware ownership/affinity analysis for the cmtos codebase.

The successor to the weakest regex rules in tools/lint/cmtos_lint.py: where
the lint works line-by-line with token patterns, this analyzer builds real
facts about the code — lambda capture lists, variable and member types,
class/function spans, [[clang::annotate]] markers — and runs scope- and
type-aware checks against them.  Run from the repo root:

    python3 tools/analyze/cmtos_analyze.py                # analyze src/
    python3 tools/analyze/cmtos_analyze.py src/transport  # restrict to a subtree
    python3 tools/analyze/cmtos_analyze.py --selftest     # probe every check
    python3 tools/analyze/cmtos_analyze.py --engine libclang

Exit status is non-zero when any finding is reported, so CI can gate on it.

Engines
-------
Two fact providers feed one shared set of checks:

  structural   A self-contained C++ scanner: comments and string literals are
               blanked (offsets preserved), brace/paren depth is tracked per
               character, and from that view the analyzer extracts lambda
               capture lists (including multi-line lists and init-captures),
               local/parameter/member types for the handful of types the
               checks care about, annotation macro spans, and class member
               declarations.  No dependencies; always available.

  libclang     The same facts lifted from a real Clang AST via clang.cindex,
               driven off compile_commands.json (CMakeLists.txt exports it;
               see --compdb).  Types come from the semantic analyzer instead
               of declaration scanning, so aliased or inferred types resolve
               too.  Used when python3-clang + libclang are installed (CI
               installs them; see .github/workflows/ci.yml `analyze`).
               Files whose TU fails to parse fall back to structural facts.

  --engine auto (default) picks libclang when importable, else structural.

Checks
------
  callback-liveness     A scheduler/timer callback (.after/.at/.after_global/
                        .at_global/defer_global/arm_local/arm_global) whose
                        lambda captures a raw conn/node/link/host/peer pointer
                        — by name, or by *type* when the pointer declaration
                        is visible — may fire after fault injection has torn
                        the object down.  The body must re-validate liveness
                        (null check, alive oracle, map lookup) before
                        dereferencing; prefer capturing `this` + an id and
                        resolving at fire time.  Unlike the retired lint rule,
                        capture lists spanning multiple lines and init-
                        captures are analyzed.
  dataplane-payload-copy
                        Media payload bytes inside src/{transport,media,net}
                        must travel as pooled PayloadView slices (DESIGN.md
                        "Two-world data plane").  Flagged by *type*: any
                        .to_vector() materialisation, and any std::vector<
                        uint8_t> constructed or .assign()ed from an expression
                        the analyzer knows is PayloadView-typed (a declared
                        view variable, or the .data/.frame member of a known
                        Osdu/Packet) — whatever the receiver is called.
  shard-affinity        State marked CMTOS_SHARD_AFFINE is owned by one
                        node's sim::NodeRuntime (DESIGN.md §10).  Node-scoped
                        layers (src/{transport,orch,media,platform}) may
                        resolve only their own node in the network registry
                        and may not reach a foreign host's entity/LLO —
                        except inside a span annotated CMTOS_CONTROL_PLANE,
                        the sanctioned control-shard escapes, which run only
                        in global (serial-round) events.  A CMTOS_SHARD_AFFINE
                        class must not declare static mutable state (shared
                        across shards by construction).
  epoch-check           A regulation-OPDU handler in src/orch/ (a function
                        taking `const Opdu&`) that reads a regulation field
                        (target_seq, max_drop, interval_id, interval,
                        drop_count) from the OPDU must compare the OPDU's
                        epoch against its fence first — epoch_fenced(o) at
                        the endpoints, a session_epoch comparison on the
                        orchestrating side.  An unfenced read is exactly the
                        split-brain bug the fencing layer exists to prevent:
                        a superseded orchestrator's stale targets applied as
                        if current (DESIGN.md section 13).
  frame-lifecycle       A FrameLease is consumed by std::move(lease).freeze():
                        any use of the lease after the freeze (before a
                        reassignment) is a use-after-move on the frame.  And
                        only data-plane types may *store* payload handles: a
                        PayloadView/FrameLease member outside the data-plane
                        dirs — or in any CMTOS_CONTROL_PLANE class — pins
                        pooled frames from control-plane lifetimes.
  hot-path-map          Per-entity lookup state in the scale-critical layers
                        (src/{transport,orch,net}) must live in the flat
                        open-addressed structures (util::FlatMap /
                        util::SlotTable): a std::map / std::unordered_map
                        *member* declaration there reintroduces the pointer-
                        chasing, allocation-per-insert containers the
                        scale-out core removed (DESIGN.md section 15).
                        Cold-path members that genuinely want ordered
                        iteration or reference stability carry an
                        allow(hot-path-map) tag stating as much.
  decode-totality       Wire decoders are total over arbitrary bytes
                        (DESIGN.md section 14): every decode()/decode_packet()
                        call yields an optional that can be empty for ANY
                        input, so the result must be branched on before it is
                        dereferenced — `*decode(...)`, `decode(...)->field`,
                        `.value()`, or a stored result used with no `if (!x)`
                        (or equivalent) in between, all assume the wire was
                        well-formed.  And inside a codec, a length/count
                        field read from the wire (reader .u16/.u32/.u64) must
                        be range-guarded against the bytes actually present
                        before it drives a resize()/reserve(): a stomped
                        length field must never size an allocation.

Suppressing
-----------
A finding is suppressed when the offending line (or the line above it)
carries

    // cmtos-analyze: allow(<check>)

with the check name from the list above.  The namespace is deliberately
distinct from `cmtos-lint: allow(...)`; tools/lint/cmtos_lint.py reports
stale tags in either namespace it owns.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_SCAN = ["src"]
DEFAULT_COMPDB = REPO_ROOT / "build" / "compile_commands.json"
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

CHECKS = (
    "callback-liveness",
    "dataplane-payload-copy",
    "shard-affinity",
    "frame-lifecycle",
    "epoch-check",
    "decode-totality",
    "hot-path-map",
)

ALLOW_RE = re.compile(r"//.*cmtos-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

DATAPLANE_DIR_RE = re.compile(r"(^|/)src/(transport|media|net)/")
NODE_SCOPED_DIR_RE = re.compile(r"(^|/)src/(transport|orch|media|platform)/")
# frame_pool.h defines PayloadView/FrameLease themselves; sync/annotation
# headers are infrastructure.
FRAME_TYPES_HOME_RE = re.compile(r"(^|/)src/util/frame_pool\.(h|cpp)$")

# ---------------------------------------------------------------------------
# Source model: comment/string-blanked code view with per-char brace depth.
# ---------------------------------------------------------------------------


def code_view(text: str) -> str:
    """Returns text of identical length with comments and string/char
    literal *contents* replaced by spaces (newlines preserved), so regexes
    and brace matching see only real code at true offsets."""
    out = list(text)
    i, n = 0, len(text)

    def blank(j: int) -> None:
        if out[j] != "\n":
            out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                blank(i)
                i += 1
        elif c == "/" and nxt == "*":
            blank(i)
            blank(i + 1)
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                blank(i)
                i += 1
            if i < n:
                blank(i)
                blank(i + 1)
                i += 2
        elif c == '"' and i >= 1 and text[i - 1] == "R":
            # Raw string: R"delim( ... )delim"
            j = text.find("(", i)
            if j < 0:
                i += 1
                continue
            delim = text[i + 1 : j]
            close = text.find(")" + delim + '"', j)
            end = n if close < 0 else close + len(delim) + 2
            for k in range(i, min(end, n)):
                blank(k)
            i = end
        elif c == '"':
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    blank(i)
                    i += 1
                if i < n:
                    blank(i)
                    i += 1
            i += 1
        elif c == "'":
            # Distinguish char literals from digit separators (1'000'000).
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() and nxt.isdigit():
                i += 1  # digit separator
                continue
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    blank(i)
                    i += 1
                if i < n:
                    blank(i)
                    i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    """A parsed source file: raw text, blanked code view, offset/line maps,
    per-char brace depth, and the cmtos-analyze allow() tags."""

    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.code = code_view(self.text)
        self.lines = self.text.splitlines()
        # line_start[k] = offset of 1-based line k+1
        self.line_start = [0]
        for m in re.finditer("\n", self.text):
            self.line_start.append(m.end())
        # brace depth BEFORE each character of the code view
        self.depth = [0] * (len(self.code) + 1)
        d = 0
        for i, ch in enumerate(self.code):
            self.depth[i] = d
            if ch == "{":
                d += 1
            elif ch == "}":
                d = max(0, d - 1)
        self.depth[len(self.code)] = d
        # allow tags: line (1-based) -> set of check names the tag names
        self.allow_at: dict[int, set[str]] = {}
        for idx, raw in enumerate(self.lines):
            m = ALLOW_RE.search(raw)
            if m:
                self.allow_at[idx + 1] = {r.strip() for r in m.group(1).split(",")}

    def line_of(self, offset: int) -> int:
        """1-based line containing offset."""
        lo, hi = 0, len(self.line_start) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_start[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def allowed(self, line: int) -> set[str]:
        """Checks suppressed on 1-based `line`: same-line or preceding-line
        tag (mirrors cmtos-lint's suppression window)."""
        return self.allow_at.get(line, set()) | self.allow_at.get(line - 1, set())

    def match_brace(self, open_off: int) -> int:
        """Offset of the '}' closing the '{' at open_off (or end of file)."""
        d = 0
        for i in range(open_off, len(self.code)):
            if self.code[i] == "{":
                d += 1
            elif self.code[i] == "}":
                d -= 1
                if d == 0:
                    return i
        return len(self.code) - 1

    def next_block(self, start: int) -> tuple[int, int] | None:
        """(open, close) offsets of the next top-level {...} after `start`,
        tracking paren depth so argument lists don't confuse it.  Returns
        None if a ';' at paren depth 0 arrives first (declaration only)."""
        pd = 0
        for i in range(start, len(self.code)):
            ch = self.code[i]
            if ch == "(":
                pd += 1
            elif ch == ")":
                pd = max(0, pd - 1)
            elif ch == "{" and pd == 0:
                return i, self.match_brace(i)
            elif ch == ";" and pd == 0:
                return None
        return None


# ---------------------------------------------------------------------------
# Facts: what the checks consume.  Either engine produces one per file.
# ---------------------------------------------------------------------------


class Capture:
    def __init__(self, text: str):
        self.text = text.strip()
        self.by_ref = self.text.startswith("&")
        body = self.text.lstrip("&").strip()
        # init-capture `name = expr` / plain capture `name`
        if "=" in body:
            name, _, init = body.partition("=")
            self.name = name.strip()
            self.init = init.strip()
        else:
            self.name = body
            self.init = ""


class Callback:
    """A lambda handed to a scheduler/timer call."""

    def __init__(self, line: int, method: str, captures: list[Capture], body: str):
        self.line = line
        self.method = method
        self.captures = captures
        self.body = body


class ClassInfo:
    def __init__(self, name: str, line: int, open_off: int, close_off: int,
                 annotation: str | None):
        self.name = name
        self.line = line
        self.open_off = open_off
        self.close_off = close_off
        self.annotation = annotation  # "shard_affine" | "control_plane" | None
        self.member_lines: list[tuple[int, str]] = []  # (1-based line, decl text)


class Facts:
    def __init__(self) -> None:
        self.callbacks: list[Callback] = []
        self.view_vars: set[str] = set()       # names typed PayloadView
        self.lease_vars: set[str] = set()      # names typed FrameLease
        self.osdu_vars: set[str] = set()       # names typed Osdu (has .data view)
        self.packet_vars: set[str] = set()     # names typed Packet (has .frame view)
        self.raw_ptr_vars: set[str] = set()    # names declared as entity-ish T*
        self.control_plane_spans: list[tuple[int, int]] = []  # 1-based line spans
        self.classes: list[ClassInfo] = []
        self.freeze_sites: list[tuple[int, str, int]] = []  # (line, var, block end off)
        self.engine = "structural"

    def in_control_plane(self, line: int) -> bool:
        return any(a <= line <= b for a, b in self.control_plane_spans)


# -- structural engine ------------------------------------------------------

SCHED_CALL_RE = re.compile(
    r"(?:(?:\.|->)\s*(after_global|at_global|after|at|arm_local|arm_global)"
    r"|\b(defer_global))\s*\(")
PTR_NAME_RE = re.compile(r"^(?:conn(?:ection)?|link|node|host|peer)(?:_?ptr)?_?$")
LIVENESS_HINT_RE = re.compile(
    r"nullptr|alive|down\s*\(|expired|find\s*\(|count\s*\(|contains\s*\(|node_up|is_up")
RAW_PTR_DECL_RE = re.compile(
    r"\b(?:\w+::)*(?:Connection|Node|Link|Host|Llo)\s*\*\s*(\w+)\s*[=;,)]")
VIEW_DECL_RE = re.compile(r"\bPayloadView\s*(?:&&?|\*)?\s+(\w+)\b")
LEASE_DECL_RE = re.compile(r"\bFrameLease\s*(?:&&?|\*)?\s+(\w+)\b")
OSDU_DECL_RE = re.compile(r"\bOsdu\s*(?:&&?|\*)?\s+(\w+)\b")
PACKET_DECL_RE = re.compile(r"\bPacket\s*(?:&&?|\*)?\s+(\w+)\b")
CLASS_RE = re.compile(
    r"\b(class|struct)\s+(CMTOS_SHARD_AFFINE|CMTOS_CONTROL_PLANE)?\s*(\w+)")
ANNOT_FN_RE = re.compile(r"\bCMTOS_CONTROL_PLANE\b")
FREEZE_RE = re.compile(r"std::move\s*\(\s*(\w+)\s*\)\s*\.\s*freeze\s*\(")


def split_top_level(s: str, sep: str = ",") -> list[str]:
    out, depth, cur = [], 0, []
    for ch in s:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        if ch == sep and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return [x for x in (e.strip() for e in out) if x]


def find_lambda(sf: SourceFile, call_open: int) -> tuple[int, int, int, int] | None:
    """Given the offset of the '(' opening a scheduler call's argument list,
    returns (capture_open, capture_close, body_open, body_close) offsets of
    the first lambda among the arguments, or None."""
    code = sf.code
    pd = 0
    i = call_open
    while i < len(code):
        ch = code[i]
        if ch == "(":
            pd += 1
        elif ch == ")":
            pd -= 1
            if pd == 0:
                return None  # call closed without a lambda
        elif ch == "[" and pd >= 1:
            prev = code[:i].rstrip()
            # A lambda-introducer follows '(' or ',' (or assignment in an
            # argument default) — an index expression follows an identifier.
            if prev and prev[-1] in "(,=":
                d = 0
                j = i
                while j < len(code):
                    if code[j] == "[":
                        d += 1
                    elif code[j] == "]":
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                blk = sf.next_block(j + 1)
                if blk is None:
                    return None
                return i, j, blk[0], blk[1]
        i += 1
    return None


def gather_facts_structural(sf: SourceFile) -> Facts:
    facts = Facts()
    code = sf.code

    # Variable/parameter/member types the checks care about.
    for rx, bag in ((RAW_PTR_DECL_RE, facts.raw_ptr_vars),
                    (VIEW_DECL_RE, facts.view_vars),
                    (LEASE_DECL_RE, facts.lease_vars),
                    (OSDU_DECL_RE, facts.osdu_vars),
                    (PACKET_DECL_RE, facts.packet_vars)):
        for m in rx.finditer(code):
            bag.add(m.group(1))

    # Classes, their annotations, and member-declaration lines (the lines at
    # exactly class-body depth — member function bodies sit deeper).
    for m in CLASS_RE.finditer(code):
        blk = sf.next_block(m.end())
        if blk is None:
            continue  # forward declaration
        open_off, close_off = blk
        annotation = None
        if m.group(2) == "CMTOS_SHARD_AFFINE":
            annotation = "shard_affine"
        elif m.group(2) == "CMTOS_CONTROL_PLANE":
            annotation = "control_plane"
        ci = ClassInfo(m.group(3), sf.line_of(m.start()), open_off, close_off, annotation)
        body_depth = sf.depth[open_off] + 1
        line = sf.line_of(open_off)
        end_line = sf.line_of(close_off)
        for ln in range(line + 1, end_line + 1):
            off = sf.line_start[ln - 1]
            if off <= close_off and sf.depth[off] == body_depth:
                text = code[off:sf.line_start[ln] if ln < len(sf.line_start) else len(code)]
                ci.member_lines.append((ln, text))
        facts.classes.append(ci)
        if annotation == "control_plane":
            facts.control_plane_spans.append((ci.line, sf.line_of(close_off)))

    # CMTOS_CONTROL_PLANE on function definitions: the macro not preceded by
    # class/struct, followed by a body.
    for m in ANNOT_FN_RE.finditer(code):
        before = code[:m.start()].rstrip()
        if before.endswith("class") or before.endswith("struct"):
            continue
        blk = sf.next_block(m.end())
        if blk is None:
            continue
        facts.control_plane_spans.append((sf.line_of(m.start()), sf.line_of(blk[1])))

    # Scheduler/timer callbacks with their capture lists and bodies.
    for m in SCHED_CALL_RE.finditer(code):
        lam = find_lambda(sf, m.end() - 1)
        if lam is None:
            continue
        cap_open, cap_close, body_open, body_close = lam
        caps = [Capture(c) for c in split_top_level(code[cap_open + 1 : cap_close])]
        body = code[body_open + 1 : body_close]
        facts.callbacks.append(
            Callback(sf.line_of(m.start()), m.group(1) or m.group(2), caps, body))

    # FrameLease freeze sites: (line, lease var, end of enclosing block).
    for m in FREEZE_RE.finditer(code):
        d0 = sf.depth[m.start()]
        end = len(code)
        for i in range(m.end(), len(code)):
            if sf.depth[i] < d0:
                end = i
                break
        facts.freeze_sites.append((sf.line_of(m.start()), m.group(1), end))

    return facts


# -- libclang engine --------------------------------------------------------


def libclang_index():
    """Returns a clang.cindex.Index or None when libclang is unavailable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        return cindex.Index.create()
    except Exception:  # library present but libclang.so missing/mismatched
        return None


def load_compdb(path: Path) -> dict:
    """compile_commands.json as {abs file -> arg list (without compiler/file)}."""
    out: dict[str, list[str]] = {}
    if not path.is_file():
        return out
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return out
    for e in entries:
        args = e.get("arguments")
        if args is None and "command" in e:
            args = e["command"].split()
        if not args:
            continue
        keep = [a for a in args[1:]
                if a.startswith(("-I", "-D", "-std", "-isystem", "-W"))]
        f = str((Path(e.get("directory", ".")) / e["file"]).resolve())
        out[f] = keep
    return out


def default_clang_args() -> list[str]:
    return ["-std=c++20", "-xc++", f"-I{REPO_ROOT / 'src'}"]


def gather_facts_libclang(sf: SourceFile, index, compdb: dict) -> Facts:
    """Facts from the Clang AST.  Structural facts seed the result; the AST
    pass replaces the type sets and annotation spans with semantic ones and
    re-derives lambda captures from real LAMBDA_EXPR cursors.  Any parse
    trouble falls back to the structural facts unchanged."""
    from clang import cindex  # type: ignore

    facts = gather_facts_structural(sf)
    args = compdb.get(str(sf.path.resolve())) or default_clang_args()
    try:
        tu = index.parse(str(sf.path), args=args,
                         options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
    except cindex.TranslationUnitLoadError:
        return facts
    if tu is None:
        return facts

    K = cindex.CursorKind
    view_vars, lease_vars, osdu_vars = set(), set(), set()
    packet_vars, ptr_vars = set(), set()
    cp_spans: list[tuple[int, int]] = []

    def type_name(t) -> str:
        return t.get_canonical().spelling

    def walk(cur) -> None:
        try:
            loc_file = cur.location.file
        except Exception:
            loc_file = None
        # Only classify declarations from this file; includes are context.
        in_file = loc_file is not None and Path(str(loc_file)).resolve() == sf.path.resolve()
        if in_file and cur.kind in (K.VAR_DECL, K.PARM_DECL, K.FIELD_DECL):
            tn = type_name(cur.type)
            name = cur.spelling or ""
            if name:
                if "PayloadView" in tn:
                    view_vars.add(name)
                if "FrameLease" in tn:
                    lease_vars.add(name)
                if re.search(r"\bOsdu\b", tn):
                    osdu_vars.add(name)
                if re.search(r"\bPacket\b", tn):
                    packet_vars.add(name)
                if tn.endswith("*") and re.search(
                        r"(Connection|Node|Link|Host|Llo)\s*\*$", tn):
                    ptr_vars.add(name)
        if in_file and cur.kind == K.ANNOTATE_ATTR and cur.spelling in (
                "cmtos::control_plane",):
            parent = cur.semantic_parent
            target = parent if parent is not None else cur
            ext = target.extent
            if ext and ext.start.line and ext.end.line:
                cp_spans.append((ext.start.line, ext.end.line))
        for child in cur.get_children():
            walk(child)

    try:
        walk(tu.cursor)
    except Exception:
        return facts

    if view_vars or lease_vars or ptr_vars or osdu_vars or packet_vars:
        facts.view_vars |= view_vars
        facts.lease_vars |= lease_vars
        facts.osdu_vars |= osdu_vars
        facts.packet_vars |= packet_vars
        facts.raw_ptr_vars |= ptr_vars
    if cp_spans:
        merged = facts.control_plane_spans + cp_spans
        facts.control_plane_spans = sorted(set(merged))
    facts.engine = "libclang"
    return facts


# ---------------------------------------------------------------------------
# Checks (engine-independent: consume SourceFile + Facts).
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rel: str, line: int, check: str, message: str):
        self.rel = rel
        self.line = line
        self.check = check
        self.message = message

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: [{self.check}] {self.message}"


def check_callback_liveness(sf: SourceFile, facts: Facts) -> list[Finding]:
    out = []
    for cb in facts.callbacks:
        risky = []
        for cap in cb.captures:
            if cap.name in ("", "=", "&", "this", "*this"):
                continue
            # A capture is a raw entity pointer when its *name* says so, its
            # declared *type* says so, or an init-capture aliases one.
            ptrish = (PTR_NAME_RE.match(cap.name) is not None
                      or cap.name in facts.raw_ptr_vars
                      or (cap.init and any(
                          re.search(rf"\b{re.escape(v)}\b", cap.init)
                          for v in facts.raw_ptr_vars)))
            if ptrish:
                risky.append(cap.name)
        if risky and not LIVENESS_HINT_RE.search(cb.body):
            out.append(Finding(
                sf.rel, cb.line, "callback-liveness",
                f"callback captures raw pointer(s) {', '.join(sorted(set(risky)))} "
                "without a liveness guard; re-validate in the body (or capture "
                "this + an id and resolve at fire time)"))
    return out


VEC_U8_RE = re.compile(r"std::vector<\s*(?:std::)?uint8_t\s*>\s*(\w*)\s*([({])")
ASSIGN_CALL_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*assign\s*\(")
TO_VECTOR_RE = re.compile(r"(?:\.|->)\s*to_vector\s*\(")


def payload_typed_expr(args: str, facts: Facts) -> str | None:
    """Returns the payload-typed source expression inside `args`, if any:
    a known PayloadView variable, or the .data/.frame view member of a known
    Osdu/Packet variable."""
    for name in facts.view_vars:
        if re.search(rf"\b{re.escape(name)}\s*(?:\.|->)\s*(?:begin|end|data|size)\s*\(",
                     args) or re.search(rf"\b{re.escape(name)}\b\s*[,)]", args):
            return name
    for name in facts.osdu_vars:
        if re.search(rf"\b{re.escape(name)}\s*(?:\.|->)\s*data\b", args):
            return f"{name}.data"
    for name in facts.packet_vars:
        if re.search(rf"\b{re.escape(name)}\s*(?:\.|->)\s*frame\b", args):
            return f"{name}.frame"
    return None


def call_args(sf: SourceFile, open_off: int) -> str:
    """Text of a balanced (...) or {...} starting at open_off."""
    code = sf.code
    open_ch = code[open_off]
    close_ch = ")" if open_ch == "(" else "}"
    d = 0
    for i in range(open_off, len(code)):
        if code[i] == open_ch:
            d += 1
        elif code[i] == close_ch:
            d -= 1
            if d == 0:
                return code[open_off + 1 : i]
    return code[open_off + 1 :]


def check_dataplane_payload_copy(sf: SourceFile, facts: Facts) -> list[Finding]:
    if not DATAPLANE_DIR_RE.search(sf.rel):
        return []
    out = []
    code = sf.code
    # Materialising a heap vector from a view is a copy by definition.
    # (to_vector exists for tests and debug dumps, not the media path.)
    for m in TO_VECTOR_RE.finditer(code):
        out.append(Finding(
            sf.rel, sf.line_of(m.start()), "dataplane-payload-copy",
            "to_vector() materialises a heap copy of pooled payload bytes; "
            "keep the PayloadView (subview/extend) on the media path"))
    # std::vector<uint8_t> built from a PayloadView-typed source.
    for m in VEC_U8_RE.finditer(code):
        args = call_args(sf, m.end() - 1)
        src = payload_typed_expr(args, facts)
        if src is not None:
            out.append(Finding(
                sf.rel, sf.line_of(m.start()), "dataplane-payload-copy",
                f"std::vector<uint8_t> copy-constructed from PayloadView-typed "
                f"'{src}'; share the pooled frame via PayloadView instead"))
    # container.assign(view.begin(), view.end()) — copying out of a view.
    for m in ASSIGN_CALL_RE.finditer(code):
        args = call_args(sf, m.end() - 1)
        src = payload_typed_expr(args, facts)
        if src is not None:
            out.append(Finding(
                sf.rel, sf.line_of(m.start()), "dataplane-payload-copy",
                f"assign() copies bytes out of PayloadView-typed '{src}'; "
                "share the pooled frame via PayloadView instead"))
    return out


NODE_RESOLVE_RE = re.compile(r"(?:\.|->)\s*node\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")
SELF_NODE_RE = re.compile(r"\bnode_?\b|\bhost_?\.id\b|node_id\s*\(")
FOREIGN_LAYER_RE = re.compile(
    r"\b(?:src|dst|peer|remote|other|target|tgt)\w*\s*(?:\.|->)\s*(?:entity|llo)\b")
STATIC_MUTABLE_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?!const\b|constexpr\b|void\b)\w")


def check_shard_affinity(sf: SourceFile, facts: Facts) -> list[Finding]:
    out = []
    if NODE_SCOPED_DIR_RE.search(sf.rel):
        code = sf.code
        for m in NODE_RESOLVE_RE.finditer(code):
            line = sf.line_of(m.start())
            if facts.in_control_plane(line):
                continue
            if not SELF_NODE_RE.search(m.group(1)):
                out.append(Finding(
                    sf.rel, line, "shard-affinity",
                    f"resolving foreign node ({m.group(1).strip()}); that node's "
                    "CMTOS_SHARD_AFFINE state belongs to another shard — interact "
                    "through net::Network delivery or a CMTOS_CONTROL_PLANE span"))
        for m in FOREIGN_LAYER_RE.finditer(code):
            line = sf.line_of(m.start())
            if facts.in_control_plane(line):
                continue
            out.append(Finding(
                sf.rel, line, "shard-affinity",
                "dereferencing a foreign host's entity/LLO outside a "
                "CMTOS_CONTROL_PLANE span; interact through net::Network delivery"))
    # Static mutable state in a shard-affine class is shared across shards
    # by construction — exactly what the annotation promises never happens.
    for ci in facts.classes:
        if ci.annotation != "shard_affine":
            continue
        for line, text in ci.member_lines:
            if STATIC_MUTABLE_RE.search(text) and "(" not in text.split("=")[0].split(";")[0]:
                out.append(Finding(
                    sf.rel, line, "shard-affinity",
                    f"static mutable member in CMTOS_SHARD_AFFINE class "
                    f"{ci.name}; shard-affine state cannot be process-global"))
    return out


MEMBER_HANDLE_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:cmtos::)?(PayloadView|FrameLease)\b[^(;]*;")


def check_frame_lifecycle(sf: SourceFile, facts: Facts) -> list[Finding]:
    out = []
    code = sf.code
    # Use-after-freeze: the lease is consumed; any later use before a
    # reassignment operates on a moved-from handle.
    for line, var, block_end in facts.freeze_sites:
        # scan from just after the freeze call to the end of the block
        start = sf.line_start[line - 1]
        m0 = FREEZE_RE.search(code, start)
        if m0 is None:
            continue
        tail = code[m0.end():block_end]
        base = m0.end()
        for um in re.finditer(rf"\b{re.escape(var)}\b", tail):
            after = tail[um.end():].lstrip()
            before = tail[:um.start()].rstrip()
            if after.startswith("="):  # reassignment re-arms the lease
                break
            if before.endswith(("std::move(", "move(")):
                break  # moved away wholesale; a new ownership story begins
            out.append(Finding(
                sf.rel, sf.line_of(base + um.start()), "frame-lifecycle",
                f"'{var}' used after std::move({var}).freeze(); the lease is "
                "consumed — freeze must be the last use (or reassign first)"))
            break
    # Payload handles stored outside the data plane (or in control-plane
    # classes anywhere) pin pooled frames from control-plane lifetimes.
    in_dataplane = bool(DATAPLANE_DIR_RE.search(sf.rel))
    types_home = bool(FRAME_TYPES_HOME_RE.search(sf.rel))
    for ci in facts.classes:
        is_control = ci.annotation == "control_plane"
        if types_home:
            continue
        if in_dataplane and not is_control:
            continue
        for line, text in ci.member_lines:
            mm = MEMBER_HANDLE_RE.search(text)
            if mm:
                where = ("a CMTOS_CONTROL_PLANE class" if is_control
                         else "a class outside src/{transport,media,net}")
                out.append(Finding(
                    sf.rel, line, "frame-lifecycle",
                    f"{mm.group(1)} member in {where} ({ci.name}); control-plane "
                    "types must not store pooled payload handles"))
    return out


OPDU_HANDLER_RE = re.compile(r"\b\w+\s*\(\s*const\s+Opdu&\s*(\w+)\s*\)")
REGULATION_FIELDS = ("target_seq", "max_drop", "interval_id", "interval", "drop_count")
EPOCH_GUARD_RE = re.compile(r"\bepoch\b|\bepoch_fenced\b|\bsession_epoch\b|\bvc_epoch\b")


def check_epoch_fencing(sf: SourceFile, facts: Facts) -> list[Finding]:
    """Flags OPDU handlers in src/orch/ that apply regulation fields from the
    wire without an epoch comparison earlier in the body."""
    if not re.search(r"(^|/)src/orch/", sf.rel):
        return []
    out = []
    code = sf.code
    for m in OPDU_HANDLER_RE.finditer(code):
        param = m.group(1)
        # Skip to the body's opening brace; a ';' first means this is only a
        # declaration.
        j = m.end()
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue
        depth = 0
        end = len(code)
        for k in range(j, len(code)):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    end = k
                    break
        body = code[j:end]
        read = re.search(
            rf"\b{re.escape(param)}\s*(?:\.|->)\s*(?:{'|'.join(REGULATION_FIELDS)})\b",
            body)
        if read is None:
            continue
        if EPOCH_GUARD_RE.search(body, 0, read.start()):
            continue
        out.append(Finding(
            sf.rel, sf.line_of(j + read.start()), "epoch-check",
            f"OPDU handler reads '{param}.{{regulation field}}' without "
            "comparing the OPDU's epoch against the fence first; a superseded "
            "orchestrator's stale targets would apply as current "
            "(epoch_fenced()/session_epoch comparison must come before the read)"))
    return out


DECODE_SITE_RE = re.compile(r"\b(?:decode|decode_packet)\s*\(")
DECODE_ASSIGN_RE = re.compile(
    r"\b(?:auto|std::optional<[^;=]+>)\s+(?:const\s+)?(\w+)\s*=\s*"
    r"[^;=]*?\bdecode(?:_packet)?\s*\(")
LEN_READ_RE = re.compile(
    r"\b(?:const\s+)?(?:auto|(?:std::)?uint(?:16|32|64)_t|(?:std::)?size_t)"
    r"(?:\s+const)?\s+(\w+)\s*=\s*\w+\s*\.\s*u(?:16|32|64)\s*\(\s*\)")


def enclosing_block_end(code: str, off: int) -> int:
    """Offset of the `}` closing the block containing `off` (or EOF)."""
    depth = 0
    for i in range(off, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth < 0:
                return i
    return len(code)


def balanced_close(code: str, open_off: int) -> int:
    depth = 0
    for i in range(open_off, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def check_decode_totality(sf: SourceFile, facts: Facts) -> list[Finding]:
    """Decoders are total; their callers must be too (DESIGN.md section 14)."""
    out = []
    code = sf.code

    # (a) Result dereferenced in the same expression: *decode(...),
    # decode(...)->field, decode(...).value().  The optional was never
    # branched on, so an attacker-controlled wire image crashes the caller.
    for m in DECODE_SITE_RE.finditer(code):
        # Walk back over the qualified-name prefix (Foo::Bar::decode).
        i = m.start()
        while i > 0 and (code[i - 1].isalnum() or code[i - 1] in ":_"):
            i -= 1
        j = i - 1
        while j >= 0 and code[j] in " \t\n":
            j -= 1
        prev = code[j] if j >= 0 else ""
        # A declaration/definition has the return type right before the name
        # (`std::optional<X> decode(` / `...> X::decode(`).  `return` is the
        # one keyword that also ends in a word character.
        if prev.isalnum() or prev in ">&":
            w = j
            while w > 0 and (code[w - 1].isalnum() or code[w - 1] == "_"):
                w -= 1
            if code[w:j + 1] not in ("return", "co_return"):
                continue
        open_off = code.index("(", m.start())
        close = balanced_close(code, open_off)
        after = code[close + 1:close + 24]
        deref_after = re.match(r"\s*->|\s*\.\s*value\s*\(", after)
        if prev == "*" or deref_after:
            out.append(Finding(
                sf.rel, sf.line_of(m.start()), "decode-totality",
                "decode result dereferenced without branching on the optional; "
                "decoders are total over arbitrary bytes — an empty result is "
                "reachable from the wire, so check before use"))

    # (b) Result stored, then dereferenced with no branch in between.  The
    # `if (auto x = decode(...))` form *is* the branch and is skipped.
    for m in DECODE_ASSIGN_RE.finditer(code):
        prefix = code[max(0, m.start() - 16):m.start()].rstrip()
        if prefix.endswith("(") and re.search(r"\b(?:if|while)\s*\($", prefix):
            continue
        var = m.group(1)
        open_off = code.index("(", m.end() - 1)
        stmt_end = balanced_close(code, open_off) + 1
        tail = code[stmt_end:enclosing_block_end(code, stmt_end)]
        deref = re.search(
            rf"\b{re.escape(var)}\s*->|\*\s*{re.escape(var)}\b"
            rf"|\b{re.escape(var)}\s*\.\s*value\s*\(", tail)
        if deref is None:
            continue
        guard = re.search(
            rf"!\s*{re.escape(var)}\b"
            rf"|\b{re.escape(var)}\s*(?:\.|->)\s*has_value"
            rf"|\(\s*{re.escape(var)}\s*[\)&|]"
            rf"|\b{re.escape(var)}\s*[=!]=",
            tail[:deref.start()])
        if guard is None:
            out.append(Finding(
                sf.rel, sf.line_of(stmt_end + deref.start()), "decode-totality",
                f"'{var}' holds a decode result and is dereferenced without a "
                f"branch on the optional (declared line "
                f"{sf.line_of(m.start())}); an empty result is reachable from "
                "the wire"))

    # (c) Wire-read length field sizing an allocation unguarded: the codec
    # must range-check it against the bytes actually present first.
    for m in LEN_READ_RE.finditer(code):
        var = m.group(1)
        tail = code[m.end():enclosing_block_end(code, m.end())]
        use = re.search(
            rf"\b(?:resize|reserve)\s*\(\s*[^;)]*\b{re.escape(var)}\b", tail)
        if use is None:
            continue
        guard = re.search(
            rf"\b{re.escape(var)}\b\s*(?:[<>]=?|[=!]=)"
            rf"|(?:[<>]=?|[=!]=)\s*\b{re.escape(var)}\b"
            rf"|min\s*\([^;\n]*\b{re.escape(var)}\b",
            tail[:use.start()])
        if guard is None:
            out.append(Finding(
                sf.rel, sf.line_of(m.end() + use.start()), "decode-totality",
                f"length field '{var}' read from the wire drives "
                f"resize()/reserve() with no range guard (read line "
                f"{sf.line_of(m.start())}); a stomped length must never size "
                "an allocation — compare against the bytes remaining first"))
    return out


HOT_PATH_DIR_RE = re.compile(r"(^|/)src/(transport|orch|net)/")
STD_MAP_MEMBER_RE = re.compile(r"\bstd\s*::\s*(unordered_map|map)\s*<")


def _map_is_return_type(text: str, open_angle: int) -> bool:
    """True when the std::map<...> whose '<' sits at open_angle is the return
    type of a member-function declaration (`std::map<K,V>& name(...)`), not a
    stored member."""
    depth = 0
    i = open_angle
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                break
        i += 1
    rest = text[i + 1:]
    return re.match(r"\s*(?:const\s*)?&?\s*\w+\s*\(", rest) is not None


def check_hot_path_map(sf: SourceFile, facts: Facts) -> list[Finding]:
    """Flags std::map / std::unordered_map *members* declared in the
    scale-critical layers; per-entity tables there are FlatMap/SlotTable
    (DESIGN.md section 15).  Function locals, parameters and return types
    are fine — the check walks class-body member lines only, and skips
    lines where the map type sits inside a parameter list or heads a
    member-function declaration."""
    if not HOT_PATH_DIR_RE.search(sf.rel):
        return []
    out = []
    for ci in facts.classes:
        for line, text in ci.member_lines:
            m = STD_MAP_MEMBER_RE.search(text)
            if m is None:
                continue
            # A '(' before the match means the map is a parameter type of a
            # member-function declaration, not stored state.
            if "(" in text[:m.start()]:
                continue
            if _map_is_return_type(text, m.end() - 1):
                continue
            out.append(Finding(
                sf.rel, line, "hot-path-map",
                f"std::{m.group(1)} member in {ci.name} "
                "(scale-critical layer); per-entity tables here are flat "
                "(util::FlatMap / util::SlotTable) — node-local allocation, "
                "open addressing, generation-stamped handles.  If this member "
                "is genuinely cold and needs ordered iteration or reference "
                "stability, tag it allow(hot-path-map) with a reason"))
    return out


ALL_CHECKS = (
    check_callback_liveness,
    check_dataplane_payload_copy,
    check_shard_affinity,
    check_frame_lifecycle,
    check_epoch_fencing,
    check_decode_totality,
    check_hot_path_map,
)


def analyze_file(path: Path, rel: str | None = None, engine: str = "structural",
                 index=None, compdb: dict | None = None) -> list[Finding]:
    rel = rel if rel is not None else path.resolve().relative_to(REPO_ROOT).as_posix()
    sf = SourceFile(path, rel)
    if engine == "libclang" and index is not None:
        facts = gather_facts_libclang(sf, index, compdb or {})
    else:
        facts = gather_facts_structural(sf)
    findings: list[Finding] = []
    for chk in ALL_CHECKS:
        findings.extend(chk(sf, facts))
    return [f for f in findings if f.check not in sf.allowed(f.line)]


# ---------------------------------------------------------------------------
# Selftest: every check must both fire on seeded probes and stay silent on
# the adjacent pass probes (>=2 fail + >=1 pass probe per check; spurious
# findings fail the selftest because expectations are compared exactly).
# ---------------------------------------------------------------------------

CB_PROBE = """\
#include "transport/connection.h"
void f(cmtos::transport::Connection* conn, cmtos::net::Link* wire) {
  sched.after(d, [conn] { conn->send(); });
  timers.arm_global(TimerKind::kKeepalive, key, d,
                    [this,
                     wire] { wire->pump(); });
  sched.after(d, [conn] { if (conn != nullptr) conn->send(); });
  sched.after(d, [this, id] { resolve(id); });
  sched.after(d, [&ent] { ent.tick(); });
  sched.after(d, [conn] { conn->send(); });  // cmtos-analyze: allow(callback-liveness)
}
"""
CB_EXPECT = {
    (3, "callback-liveness"),   # classic name-based raw capture
    (4, "callback-liveness"),   # multi-line capture list, type-resolved 'wire'
}

DP_PROBE = """\
#include "util/frame_pool.h"
void g(const cmtos::PayloadView& view, cmtos::transport::Osdu& osdu) {
  auto bytes = view.to_vector();
  std::vector<std::uint8_t> scratch(view.begin(), view.end());
  staging.assign(osdu.data.begin(), osdu.data.end());
  std::vector<std::uint8_t> hdr(header.begin(), header.end());
  auto sub = view.subview(0, 4);
  auto dump = view.to_vector();  // cmtos-analyze: allow(dataplane-payload-copy)
}
"""
DP_EXPECT = {
    (3, "dataplane-payload-copy"),  # to_vector materialisation
    (4, "dataplane-payload-copy"),  # vector built from a *typed* view (receiver
                                    # name carries no payload hint — regex-proof)
    (5, "dataplane-payload-copy"),  # assign() out of an Osdu's view member
}

SH_PROBE = """\
#include "util/thread_annotations.h"
void h() {
  auto& a = network_.node(node_).runtime();
  auto& b = network_.node(spec.sink).entity();
  src_host.entity.t_connect_request(req);
  auto& c = network_.node(peer_id).runtime();  // cmtos-analyze: allow(shard-affinity)
}
CMTOS_CONTROL_PLANE
void sanctioned() {
  auto& d = network_.node(spec.sink).entity();
  peer_host.entity.bind(t, u);
}
class CMTOS_SHARD_AFFINE ProbeEntity {
 public:
  static constexpr int kMax = 4;
  static int live_count;
  int x_ = 0;
};
"""
SH_EXPECT = {
    (4, "shard-affinity"),    # foreign node resolve (spec.sink)
    (5, "shard-affinity"),    # foreign host layer deref
    (16, "shard-affinity"),   # static mutable member in shard-affine class
}

FL_PROBE = """\
#include "util/frame_pool.h"
cmtos::PayloadView p(cmtos::FramePool& pool) {
  cmtos::FrameLease lease = pool.lease(64);
  auto view = std::move(lease).freeze(64);
  lease.data();
  cmtos::FrameLease l2 = pool.lease(32);
  auto v2 = std::move(l2).freeze(32);
  l2 = pool.lease(16);
  auto v3 = std::move(l2).freeze(16);
  return view;
}
"""
FL_EXPECT = {
    (5, "frame-lifecycle"),   # use after freeze
}

FL_MEMBER_PROBE = """\
#include "util/frame_pool.h"
class SessionPlanner {
 public:
  void plan();

 private:
  cmtos::PayloadView stash_;
  cmtos::FrameLease pending_;
  std::vector<std::uint8_t> control_bytes_;
  cmtos::PayloadView scratch_;  // cmtos-analyze: allow(frame-lifecycle)
};
"""
FL_MEMBER_EXPECT = {
    (7, "frame-lifecycle"),   # PayloadView member outside the data plane
    (8, "frame-lifecycle"),   # FrameLease member outside the data plane
}

EP_PROBE = """\
#include "orch/opdu.h"
void RegulationEngine::handle_regulate_sink(const Opdu& o) {
  if (epoch_fenced(o)) return;
  st->target_seq = o.target_seq;
}
void RegulationEngine::handle_regulate_src(const Opdu& o) {
  st->max_drop = o.max_drop;
}
void RegulationEngine::handle_drop(const Opdu& o) {
  conn->drop_at_source(o.drop_count);
}
void RegulationEngine::handle_sess_rel(const Opdu& o) {
  detach_endpoint({o.session, o.vc});
}
void SessionTable::handle_reg_ind(const Opdu& o) {
  if (o.epoch < session_epoch(o.session)) return;
  merge(o.vc, o.interval_id);
}
void RegulationEngine::handle_delayed(const Opdu& o) {
  note(o.interval);  // cmtos-analyze: allow(epoch-check)
}
"""
EP_EXPECT = {
    (7, "epoch-check"),    # regulation field applied with no fence in sight
    (10, "epoch-check"),   # drop budget consumed unfenced
}

DT_PROBE = """\
#include "transport/tpdu.h"
void bad_chain(std::span<const std::uint8_t> w) {
  apply(cmtos::transport::AckTpdu::decode(w)->cumulative);
  auto dt = *cmtos::transport::DataTpdu::decode(w);
}
void bad_var(std::span<const std::uint8_t> w) {
  auto nk = cmtos::transport::NakTpdu::decode(w);
  retransmit(nk->missing);
}
void bad_len(cmtos::ByteReader& r, std::vector<std::uint32_t>& out) {
  const std::uint32_t n = r.u32();
  out.reserve(n);
}
void good(std::span<const std::uint8_t> w, cmtos::ByteReader& r,
          std::vector<std::uint32_t>& out) {
  auto ak = cmtos::transport::AckTpdu::decode(w);
  if (!ak) return;
  apply(ak->cumulative);
  if (auto kb = cmtos::transport::KeepaliveTpdu::decode(w)) note(kb->vc);
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / 4) return;
  out.reserve(n);
  auto dg = *cmtos::transport::DatagramTpdu::decode(w);  // cmtos-analyze: allow(decode-totality)
}
"""
DT_EXPECT = {
    (3, "decode-totality"),   # same-expression -> chain off the optional
    (4, "decode-totality"),   # *decode(...) immediate dereference
    (8, "decode-totality"),   # stored result deref'd with no branch between
    (12, "decode-totality"),  # wire length sizing a reserve with no guard
}

HM_PROBE = """\
#include <map>
#include "util/slot_table.h"
class VcRouter {
 public:
  void route(const std::map<int, int>& overrides);

 private:
  const std::map<int, long>& snapshot() const;
  std::map<int, long> targets_;
  std::unordered_map<int, long> index_;
  util::FlatMap<int, long> fast_;
  // Ordered iteration feeds the debug dump; never on the data path.
  std::map<int, long> names_;  // cmtos-analyze: allow(hot-path-map)
};
inline void helper() {
  std::map<int, int> scratch;
  (void)scratch;
}
"""
HM_EXPECT = {
    (9, "hot-path-map"),    # std::map member in a scale-critical layer
    (10, "hot-path-map"),   # std::unordered_map member likewise
}

PROBES = (
    # (relative path the dir-scoped checks see, source, expected findings)
    ("src/transport/probe_callbacks.cpp", CB_PROBE, CB_EXPECT),
    ("src/net/probe_hotmap.h", HM_PROBE, HM_EXPECT),
    ("src/net/probe_dataplane.cpp", DP_PROBE, DP_EXPECT),
    ("src/orch/probe_shard.cpp", SH_PROBE, SH_EXPECT),
    ("src/media/probe_freeze.cpp", FL_PROBE, FL_EXPECT),
    ("src/platform/probe_members.h", FL_MEMBER_PROBE, FL_MEMBER_EXPECT),
    ("src/orch/probe_epoch.cpp", EP_PROBE, EP_EXPECT),
    ("src/transport/probe_decode.cpp", DT_PROBE, DT_EXPECT),
)


def selftest(engines: list[str], index, compdb: dict) -> int:
    import tempfile

    ok = True
    with tempfile.TemporaryDirectory(dir=REPO_ROOT) as tmp:
        for rel, source, expect in PROBES:
            probe = Path(tmp) / rel
            probe.parent.mkdir(parents=True, exist_ok=True)
            probe.write_text(source, encoding="utf-8")
        for engine in engines:
            for rel, source, expect in PROBES:
                probe = Path(tmp) / rel
                got = {(f.line, f.check)
                       for f in analyze_file(probe, rel=rel, engine=engine,
                                             index=index, compdb=compdb)}
                if got != expect:
                    print(f"cmtos-analyze selftest FAILED [{engine}] {rel}:\n"
                          f"  missing:  {sorted(expect - got)}\n"
                          f"  spurious: {sorted(got - expect)}", file=sys.stderr)
                    ok = False
            if ok:
                print(f"cmtos-analyze selftest passed [{engine}]", file=sys.stderr)
    return 0 if ok else 1


# ---------------------------------------------------------------------------


def iter_files(args: list[str]) -> list[Path]:
    roots = [REPO_ROOT / a for a in args] if args else [REPO_ROOT / d for d in DEFAULT_SCAN]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                files.append(p)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="cmtos_analyze.py",
        description="AST-aware ownership/affinity checks (see module docstring)")
    ap.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    ap.add_argument("--engine", choices=["auto", "structural", "libclang"],
                    default="auto")
    ap.add_argument("--compdb", type=Path, default=DEFAULT_COMPDB,
                    help="compile_commands.json (default: build/)")
    ap.add_argument("--selftest", action="store_true",
                    help="verify every check fires on probes and honours allow()")
    ap.add_argument("--list-checks", action="store_true")
    opts = ap.parse_args(argv)

    if opts.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    index = None
    engine = opts.engine
    if engine in ("auto", "libclang"):
        index = libclang_index()
        if index is None:
            if engine == "libclang":
                print("cmtos-analyze: --engine libclang requested but clang.cindex/"
                      "libclang is unavailable", file=sys.stderr)
                return 2
            engine = "structural"
        else:
            engine = "libclang"
    compdb = load_compdb(opts.compdb)
    if engine == "libclang" and not compdb:
        print(f"cmtos-analyze: note: no compile_commands.json at {opts.compdb}; "
              "using default clang args (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)

    if opts.selftest:
        engines = ["structural"] + (["libclang"] if index is not None else [])
        return selftest(engines, index, compdb)

    findings: list[Finding] = []
    files = iter_files(opts.paths)
    for f in files:
        findings.extend(analyze_file(f, engine=engine, index=index, compdb=compdb))
    for finding in findings:
        print(finding)
    print(f"cmtos-analyze [{engine}]: {len(files)} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
