#!/usr/bin/env python3
"""cmtos-lint: repo-specific static checks for the cmtos codebase.

Fast, dependency-free line checks that encode project rules clang-tidy
cannot express.  Run from the repo root:

    python3 tools/lint/cmtos_lint.py            # check src/ tests/ bench/ examples/
    python3 tools/lint/cmtos_lint.py src/orch   # restrict to a subtree

Exit status is non-zero when any finding is reported, so CI can gate on it.

The former regex rules callback-liveness, dataplane-payload-copy and
cross-node-state-access have moved to the AST-aware analyzer
(tools/analyze/cmtos_analyze.py), which resolves types and scopes instead
of matching variable names.  Their suppression namespace is
`cmtos-analyze: allow(...)`; this tool only owns `cmtos-lint: allow(...)`.

Rules
-----
  naked-mutex          .lock()/.unlock() called directly on a mutex instead of
                       through an RAII guard (lock_guard/unique_lock/scoped_lock).
                       Manual unlock paths are how the pre-RAII code leaked locks
                       on early returns.
  narrowing-in-codec   PDU encoders (tpdu/opdu/rpc codecs, byte_io users) must
                       narrow host-width values through cmtos::narrow<>, which
                       asserts the value round-trips, never through a naked
                       static_cast to a narrower wire type.
  handler-state-check  Transport primitive handlers (on_data/on_ack/on_nak/
                       on_feedback) must validate the VC state before acting;
                       late packets racing teardown are otherwise processed
                       against a closed VC.
  include-hygiene      Headers carry #pragma once; no "../" relative includes;
                       no <bits/...> internal libstdc++ headers.
  banned-function      assert() in src/ (use CMTOS_ASSERT/CMTOS_DCHECK so release
                       builds count violations instead of compiling the check
                       out), plus sprintf/strcpy/strcat/gets.
  qos-set-agreed       QosMonitor::set_agreed() rebaselines the monitored
                       contract, so it may only be called by the transport
                       entity's renegotiation path (src/transport/).  Anywhere
                       else it silently detaches the monitor from the contract
                       the peers actually agreed on.
  stale-allow          a `cmtos-lint: allow(rule)` comment that suppresses
                       nothing — the named rule no longer fires on that line or
                       the next — or that names a rule this tool does not know
                       (including the rules that migrated to cmtos-analyze).
                       Stale tags are how suppressions rot into blanket
                       exemptions after the code under them changes.

Suppressing
-----------
A finding is suppressed when the offending line (or the line above it) carries

    // cmtos-lint: allow(<rule>)

with the rule name from the list above.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_SCAN = ["src", "tests", "bench", "examples", "tools"]
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

KNOWN_RULES = {
    "naked-mutex",
    "narrowing-in-codec",
    "handler-state-check",
    "include-hygiene",
    "banned-function",
    "qos-set-agreed",
    "stale-allow",
}

ALLOW_RE = re.compile(r"//.*cmtos-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# naked-mutex: a direct .lock()/.unlock() member call.  RAII guard
# constructions mention the guard type on the same line; std::lock and
# defer_lock idioms do too.
NAKED_LOCK_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*(?:lock|unlock|try_lock)\s*\(")
RAII_HINT_RE = re.compile(r"lock_guard|unique_lock|scoped_lock|shared_lock|std::lock\b")

# narrowing-in-codec: naked static_cast to a narrower wire type inside a
# codec file.  cmtos::narrow<> is the sanctioned spelling.
CODEC_FILE_RE = re.compile(r"(tpdu|opdu|byte_io|codec|wire|rpc)[^/]*\.(h|hpp|cc|cpp)$")
NARROW_CAST_RE = re.compile(r"static_cast<\s*(?:std::)?u?int(?:8|16|32)_t\s*>")

# handler-state-check: transport primitive handler definitions.
HANDLER_DEF_RE = re.compile(r"void\s+Connection::(on_data|on_ack|on_nak|on_feedback)\s*\(")
STATE_CHECK_RE = re.compile(r"state_")

# include-hygiene
INCLUDE_RE = re.compile(r'#\s*include\s*[<"]([^">]+)[">]')

# qos-set-agreed: a member call (not the declaration) to set_agreed outside
# src/transport/.  Contract changes must flow through renegotiation.
SET_AGREED_RE = re.compile(r"(?:\.|->)\s*set_agreed\s*\(")

BANNED_CALLS = {
    # call-site regex -> (rule applies to src/ only?, message)
    re.compile(r"(?<![\w.])assert\s*\("): (
        True,
        "raw assert(); use CMTOS_ASSERT/CMTOS_DCHECK from util/contract.h",
    ),
    re.compile(r"(?<![\w.])sprintf\s*\("): (False, "sprintf; use snprintf"),
    re.compile(r"(?<![\w.])strcpy\s*\("): (False, "strcpy; use bounded copies"),
    re.compile(r"(?<![\w.])strcat\s*\("): (False, "strcat; use bounded appends"),
    re.compile(r"(?<![\w.])gets\s*\("): (False, "gets; never safe"),
}


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed on line idx (0-based): same-line or preceding-line tag."""
    rules: set[str] = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def strip_strings_and_comments(line: str) -> str:
    """Crude removal of string literals and // comments so patterns inside
    them don't fire.  Block comments spanning lines are rare in this repo
    and handled conservatively (not stripped)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def raw_findings(path: Path, lines: list[str], rel: str) -> list[Finding]:
    """Every finding the rules produce, before allow() suppression.  Kept
    separate so stale-allow can ask "would this rule fire here?" without the
    tag under test hiding the answer."""
    findings: list[Finding] = []
    in_src = rel.startswith("src/") or "/src/" in rel
    in_transport = rel.startswith("src/transport/") or "/src/transport/" in rel
    is_header = path.suffix in {".h", ".hpp"}
    is_codec = bool(CODEC_FILE_RE.search(rel))
    text = "\n".join(lines)

    if is_header and "#pragma once" not in text:
        findings.append(Finding(path, 1, "include-hygiene", "header lacks #pragma once"))

    handler_spans: list[tuple[int, str]] = []  # (start line idx, handler name)
    for idx, raw in enumerate(lines):
        line = strip_strings_and_comments(raw)

        if NAKED_LOCK_RE.search(line) and not RAII_HINT_RE.search(line):
            findings.append(
                Finding(path, idx + 1, "naked-mutex",
                        "direct lock()/unlock(); use std::lock_guard or std::unique_lock"))

        if is_codec and NARROW_CAST_RE.search(line):
            findings.append(
                Finding(path, idx + 1, "narrowing-in-codec",
                        "naked static_cast to a narrow wire type; use cmtos::narrow<>"))

        m = INCLUDE_RE.search(raw)  # raw: string-stripping would eat the "..." path
        if m:
            target = m.group(1)
            if target.startswith("../"):
                findings.append(
                    Finding(path, idx + 1, "include-hygiene",
                            'relative "../" include; use a src-rooted path'))
            if target.startswith("bits/"):
                findings.append(
                    Finding(path, idx + 1, "include-hygiene",
                            "<bits/...> is libstdc++ internal; include the standard header"))

        if not in_transport and SET_AGREED_RE.search(line):
            findings.append(
                Finding(path, idx + 1, "qos-set-agreed",
                        "QosMonitor::set_agreed() outside src/transport/; contract "
                        "changes must flow through renegotiation"))

        for pat, (src_only, msg) in BANNED_CALLS.items():
            if src_only and not in_src:
                continue
            if pat.search(line):
                findings.append(Finding(path, idx + 1, "banned-function", msg))

        hm = HANDLER_DEF_RE.search(line)
        if hm:
            handler_spans.append((idx, hm.group(1)))

    # handler-state-check: the handler body's first dozen lines must consult
    # the VC state (guard clause or CMTOS_DCHECK on state_).
    for start, name in handler_spans:
        body = "\n".join(lines[start : start + 12])
        if not STATE_CHECK_RE.search(body.split("\n", 1)[1] if "\n" in body else ""):
            findings.append(
                Finding(path, start + 1, "handler-state-check",
                        f"{name}() must validate the VC state before acting"))

    return findings


def check_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    rel = path.relative_to(REPO_ROOT).as_posix()

    raw = raw_findings(path, lines, rel)
    findings = [f for f in raw
                if f.rule not in allowed_rules(lines, f.line_no - 1)]

    # stale-allow: a tag at line t suppresses findings at t and t+1 (see
    # allowed_rules), so it is live iff the named rule fires raw on one of
    # those lines.  Unknown names — typos, or rules that migrated to
    # cmtos-analyze — are always findings: they suppress nothing here and
    # hide nothing there.
    fired = {(f.line_no, f.rule) for f in raw}
    for idx, line in enumerate(lines):
        m = ALLOW_RE.search(line)
        if not m or "stale-allow" in allowed_rules(lines, idx):
            continue
        for rule in (r.strip() for r in m.group(1).split(",")):
            if rule == "stale-allow":
                continue  # meta-suppression; staleness checking it would recurse
            if rule not in KNOWN_RULES:
                findings.append(
                    Finding(path, idx + 1, "stale-allow",
                            f"allow({rule}) names an unknown rule; if it moved to "
                            "the AST analyzer, retag as cmtos-analyze: allow(...)"))
            elif not any((t, rule) in fired for t in (idx + 1, idx + 2)):
                findings.append(
                    Finding(path, idx + 1, "stale-allow",
                            f"allow({rule}) suppresses nothing — the rule no longer "
                            "fires on this line or the next; delete the tag"))

    return findings


def iter_files(args: list[str]) -> list[Path]:
    roots = [REPO_ROOT / a for a in args] if args else [REPO_ROOT / d for d in DEFAULT_SCAN]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                files.append(p)
    return files


PROBE = """\
#include "../foo.h"
#include <bits/stdc++.h>
void f() {
  mu.lock();
  char b[8]; sprintf(b, "x");
  assert(1 == 1);
  mu.unlock();  // cmtos-lint: allow(naked-mutex)
  const auto n = static_cast<std::uint16_t>(v.size());
  mon.set_agreed(p);
  mon.set_agreed(p);  // cmtos-lint: allow(qos-set-agreed)
}
"""
PROBE_EXPECT = {  # line -> rule
    (1, "include-hygiene"),
    (2, "include-hygiene"),
    (4, "naked-mutex"),
    (5, "banned-function"),
    (6, "banned-function"),  # raw assert (probe scans as src/)
    (8, "narrowing-in-codec"),  # probe scans as a codec file
    (9, "qos-set-agreed"),  # probe is src/ but not src/transport/; 10 allowed
}


STALE_PROBE = """\
void s() {
  mu.lock();  // cmtos-lint: allow(naked-mutex)
  int x = 0;  // cmtos-lint: allow(naked-mutex)
  int y = 0;  // cmtos-lint: allow(callback-liveness)
  // cmtos-lint: allow(stale-allow)
  int z = 0;  // cmtos-lint: allow(qos-set-agreed)
}
"""
STALE_PROBE_EXPECT = {
    (3, "stale-allow"),  # naked-mutex doesn't fire on line 3 or 4
    (4, "stale-allow"),  # callback-liveness migrated to cmtos-analyze
    # line 6 is stale too, but line 5's allow(stale-allow) suppresses it
}


def selftest() -> int:
    """Verifies every rule both fires on a seeded probe and honours allow()."""
    import tempfile

    with tempfile.TemporaryDirectory(dir=REPO_ROOT) as tmp:
        # Path chosen so in_src and CODEC_FILE_RE both apply.
        probe_dir = Path(tmp) / "src"
        probe_dir.mkdir()
        probe = probe_dir / "probe_codec.cpp"
        probe.write_text(PROBE, encoding="utf-8")
        got = {(f.line_no, f.rule) for f in check_file(probe)}
        # Second probe: stale-allow needs tags that suppress nothing, which
        # the first probe deliberately never has.
        stale_probe = probe_dir / "probe_stale.cpp"
        stale_probe.write_text(STALE_PROBE, encoding="utf-8")
        stale_got = {(f.line_no, f.rule) for f in check_file(stale_probe)}
    ok = True
    if got != PROBE_EXPECT:
        print(f"cmtos-lint selftest FAILED:\n  missing: {PROBE_EXPECT - got}\n"
              f"  spurious: {got - PROBE_EXPECT}", file=sys.stderr)
        ok = False
    if stale_got != STALE_PROBE_EXPECT:
        print(f"cmtos-lint selftest (stale probe) FAILED:\n"
              f"  missing: {STALE_PROBE_EXPECT - stale_got}\n"
              f"  spurious: {stale_got - STALE_PROBE_EXPECT}", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print("cmtos-lint selftest passed", file=sys.stderr)
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--selftest":
        return selftest()
    findings: list[Finding] = []
    files = iter_files(argv)
    for f in files:
        findings.extend(check_file(f))
    for finding in findings:
        print(finding)
    print(f"cmtos-lint: {len(files)} files, {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
