#!/usr/bin/env python3
"""cmtos-lint: repo-specific static checks for the cmtos codebase.

Fast, dependency-free line checks that encode project rules clang-tidy
cannot express.  Run from the repo root:

    python3 tools/lint/cmtos_lint.py            # check src/ tests/ bench/ examples/
    python3 tools/lint/cmtos_lint.py src/orch   # restrict to a subtree

Exit status is non-zero when any finding is reported, so CI can gate on it.

Rules
-----
  naked-mutex          .lock()/.unlock() called directly on a mutex instead of
                       through an RAII guard (lock_guard/unique_lock/scoped_lock).
                       Manual unlock paths are how the pre-RAII code leaked locks
                       on early returns.
  narrowing-in-codec   PDU encoders (tpdu/opdu/rpc codecs, byte_io users) must
                       narrow host-width values through cmtos::narrow<>, which
                       asserts the value round-trips, never through a naked
                       static_cast to a narrower wire type.
  handler-state-check  Transport primitive handlers (on_data/on_ack/on_nak/
                       on_feedback) must validate the VC state before acting;
                       late packets racing teardown are otherwise processed
                       against a closed VC.
  include-hygiene      Headers carry #pragma once; no "../" relative includes;
                       no <bits/...> internal libstdc++ headers.
  banned-function      assert() in src/ (use CMTOS_ASSERT/CMTOS_DCHECK so release
                       builds count violations instead of compiling the check
                       out), plus sprintf/strcpy/strcat/gets.
  qos-set-agreed       QosMonitor::set_agreed() rebaselines the monitored
                       contract, so it may only be called by the transport
                       entity's renegotiation path (src/transport/).  Anywhere
                       else it silently detaches the monitor from the contract
                       the peers actually agreed on.
  callback-liveness    a scheduler callback (.after()/.at()) that captures a raw
                       node/connection-ish pointer (conn/link/node/host/peer) may
                       fire after fault injection has torn the object down; the
                       lambda body must re-validate liveness (null check, alive
                       oracle, map lookup) before dereferencing.  Prefer
                       capturing `this` + an id and resolving at fire time.
  dataplane-payload-copy
                       media payload bytes inside the data-plane layers
                       (src/transport, src/media, src/net) must travel as
                       pooled PayloadView slices (DESIGN.md "Two-world data
                       plane").  Copy idioms on payload-ish receivers —
                       payload.assign(...), payload = std::vector<...>(...),
                       or a std::vector<uint8_t> copy-constructed from a
                       view/frame/payload — reintroduce a per-fragment heap
                       copy on the steady-state media path.  Control-plane
                       copies carry an allow() tag.
  cross-node-state-access
                       node-scoped layers (src/transport, src/orch, src/media,
                       src/platform) may resolve only their *own* node in the
                       network registry; reaching another node's entity/LLO
                       object directly races its shard under --threads N and
                       bypasses the Network-delivery ownership rule (DESIGN.md
                       §10).  Control-shard managers that legitimately touch
                       many nodes from global events carry an allow() tag.

Suppressing
-----------
A finding is suppressed when the offending line (or the line above it) carries

    // cmtos-lint: allow(<rule>)

with the rule name from the list above.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_SCAN = ["src", "tests", "bench", "examples", "tools"]
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

ALLOW_RE = re.compile(r"//.*cmtos-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# naked-mutex: a direct .lock()/.unlock() member call.  RAII guard
# constructions mention the guard type on the same line; std::lock and
# defer_lock idioms do too.
NAKED_LOCK_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*(?:lock|unlock|try_lock)\s*\(")
RAII_HINT_RE = re.compile(r"lock_guard|unique_lock|scoped_lock|shared_lock|std::lock\b")

# narrowing-in-codec: naked static_cast to a narrower wire type inside a
# codec file.  cmtos::narrow<> is the sanctioned spelling.
CODEC_FILE_RE = re.compile(r"(tpdu|opdu|byte_io|codec|wire|rpc)[^/]*\.(h|hpp|cc|cpp)$")
NARROW_CAST_RE = re.compile(r"static_cast<\s*(?:std::)?u?int(?:8|16|32)_t\s*>")

# handler-state-check: transport primitive handler definitions.
HANDLER_DEF_RE = re.compile(r"void\s+Connection::(on_data|on_ack|on_nak|on_feedback)\s*\(")
STATE_CHECK_RE = re.compile(r"state_")

# include-hygiene
INCLUDE_RE = re.compile(r'#\s*include\s*[<"]([^">]+)[">]')

# qos-set-agreed: a member call (not the declaration) to set_agreed outside
# src/transport/.  Contract changes must flow through renegotiation.
SET_AGREED_RE = re.compile(r"(?:\.|->)\s*set_agreed\s*\(")

# callback-liveness: a lambda handed to the scheduler whose capture list
# names a pointer-ish local.  The capture-list requirement keeps map
# .at(key) calls from matching.
SCHED_LAMBDA_RE = re.compile(r"\.\s*(?:after|at)\s*\(.*?\[([^\]]*)\]")
PTRISH_CAPTURE_RE = re.compile(
    r"(?:^|[,\s&=])(?:conn(?:ection)?|link|node|host|peer)(?:_?ptr)?\s*(?:$|[,=])")
LIVENESS_HINT_RE = re.compile(
    r"nullptr|alive|down\s*\(|expired|find\s*\(|count\s*\(|contains\s*\(|node_up|is_up")

# dataplane-payload-copy: byte-copy idioms on payload-ish receivers inside
# the data-plane layers.  Three spellings: .assign() onto a payload/frag/
# frame member, assigning a freshly built vector to one, and building a
# std::vector<uint8_t> from a view/frame/payload source (iterator-pair or
# pointer+size copy).
DATAPLANE_DIR_RE = re.compile(r"(^|/)src/(transport|media|net)/")
PAYLOAD_ASSIGN_RE = re.compile(
    r"\b\w*(?:payload|frag|frame|osdu)\w*\s*(?:\.|->)\s*assign\s*\(")
PAYLOAD_VEC_ASSIGN_RE = re.compile(
    r"\b\w*(?:payload|frag|frame|osdu)\w*\s*=\s*std::vector<\s*(?:std::)?uint8_t\s*>\s*[({]")
VIEW_VEC_COPY_RE = re.compile(
    r"std::vector<\s*(?:std::)?uint8_t\s*>\s*[({][^)}]*\b(?:payload|view|frame|frag)")

# cross-node-state-access: node-scoped layers resolve nodes in the network
# registry only by their own id.  Self spellings are `node_`/`node`,
# `host_.id`/`host.id` and `node_id()`; anything else (a peer id, a spec
# field, a loop variable) is a foreign node whose state belongs to another
# shard.  A second pattern catches reaching a foreign Host's layer objects
# (`src_host.entity`, `peer->llo`) without going through the registry.
NODE_SCOPED_DIR_RE = re.compile(r"(^|/)src/(transport|orch|media|platform)/")
NODE_RESOLVE_RE = re.compile(r"(?:\.|->)\s*node\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")
SELF_NODE_RE = re.compile(r"\bnode_?\b|\bhost_?\.id\b|node_id\s*\(")
FOREIGN_LAYER_RE = re.compile(
    r"\b(?:src|dst|peer|remote|other|target|tgt)\w*\s*(?:\.|->)\s*(?:entity|llo)\b")

BANNED_CALLS = {
    # call-site regex -> (rule applies to src/ only?, message)
    re.compile(r"(?<![\w.])assert\s*\("): (
        True,
        "raw assert(); use CMTOS_ASSERT/CMTOS_DCHECK from util/contract.h",
    ),
    re.compile(r"(?<![\w.])sprintf\s*\("): (False, "sprintf; use snprintf"),
    re.compile(r"(?<![\w.])strcpy\s*\("): (False, "strcpy; use bounded copies"),
    re.compile(r"(?<![\w.])strcat\s*\("): (False, "strcat; use bounded appends"),
    re.compile(r"(?<![\w.])gets\s*\("): (False, "gets; never safe"),
}


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed on line idx (0-based): same-line or preceding-line tag."""
    rules: set[str] = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def strip_strings_and_comments(line: str) -> str:
    """Crude removal of string literals and // comments so patterns inside
    them don't fire.  Block comments spanning lines are rare in this repo
    and handled conservatively (not stripped)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def lambda_body(lines: list[str], idx: int, col: int, max_lines: int = 8) -> str:
    """Text of the lambda body starting at lines[idx][col:], up to the brace
    that closes it (or max_lines lines, for oversized bodies)."""
    depth = 0
    started = False
    out: list[str] = []
    for j in range(idx, min(idx + max_lines, len(lines))):
        for ch in lines[j][col:] if j == idx else lines[j]:
            if ch == "{":
                depth += 1
                started = True
            elif ch == "}":
                depth -= 1
                if started and depth == 0:
                    return "".join(out)
            if started:
                out.append(ch)
        out.append("\n")
    return "".join(out)


def check_file(path: Path) -> list[Finding]:
    findings: list[Finding] = []
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    rel = path.relative_to(REPO_ROOT).as_posix()
    in_src = rel.startswith("src/") or "/src/" in rel
    in_transport = rel.startswith("src/transport/") or "/src/transport/" in rel
    in_node_scoped = bool(NODE_SCOPED_DIR_RE.search(rel))
    in_dataplane = bool(DATAPLANE_DIR_RE.search(rel))
    is_header = path.suffix in {".h", ".hpp"}
    is_codec = bool(CODEC_FILE_RE.search(rel))

    if is_header and rel != "tools/lint/cmtos_lint.py" and "#pragma once" not in text:
        findings.append(Finding(path, 1, "include-hygiene", "header lacks #pragma once"))

    handler_spans: list[tuple[int, str]] = []  # (start line idx, handler name)
    for idx, raw in enumerate(lines):
        allow = allowed_rules(lines, idx)
        line = strip_strings_and_comments(raw)

        if "naked-mutex" not in allow and NAKED_LOCK_RE.search(line) and not RAII_HINT_RE.search(line):
            findings.append(
                Finding(path, idx + 1, "naked-mutex",
                        "direct lock()/unlock(); use std::lock_guard or std::unique_lock"))

        if is_codec and "narrowing-in-codec" not in allow and NARROW_CAST_RE.search(line):
            findings.append(
                Finding(path, idx + 1, "narrowing-in-codec",
                        "naked static_cast to a narrow wire type; use cmtos::narrow<>"))

        m = INCLUDE_RE.search(raw)  # raw: string-stripping would eat the "..." path
        if m and "include-hygiene" not in allow:
            target = m.group(1)
            if target.startswith("../"):
                findings.append(
                    Finding(path, idx + 1, "include-hygiene",
                            'relative "../" include; use a src-rooted path'))
            if target.startswith("bits/"):
                findings.append(
                    Finding(path, idx + 1, "include-hygiene",
                            "<bits/...> is libstdc++ internal; include the standard header"))

        if (not in_transport and "qos-set-agreed" not in allow
                and SET_AGREED_RE.search(line)):
            findings.append(
                Finding(path, idx + 1, "qos-set-agreed",
                        "QosMonitor::set_agreed() outside src/transport/; contract "
                        "changes must flow through renegotiation"))

        if in_dataplane and "dataplane-payload-copy" not in allow:
            if (PAYLOAD_ASSIGN_RE.search(line) or PAYLOAD_VEC_ASSIGN_RE.search(line)
                    or VIEW_VEC_COPY_RE.search(line)):
                findings.append(
                    Finding(path, idx + 1, "dataplane-payload-copy",
                            "byte copy onto a data-plane payload; share the pooled "
                            "frame via PayloadView (subview/extend/adopt) instead"))

        if in_node_scoped and "cross-node-state-access" not in allow:
            nm = NODE_RESOLVE_RE.search(line)
            if nm and not SELF_NODE_RE.search(nm.group(1)):
                findings.append(
                    Finding(path, idx + 1, "cross-node-state-access",
                            f"resolving foreign node ({nm.group(1).strip()}); "
                            "another node's state belongs to another shard — "
                            "interact through net::Network delivery"))
            if FOREIGN_LAYER_RE.search(line):
                findings.append(
                    Finding(path, idx + 1, "cross-node-state-access",
                            "dereferencing a foreign host's entity/LLO; "
                            "interact through net::Network delivery"))

        for pat, (src_only, msg) in BANNED_CALLS.items():
            if src_only and not in_src:
                continue
            if "banned-function" not in allow and pat.search(line):
                findings.append(Finding(path, idx + 1, "banned-function", msg))

        if "callback-liveness" not in allow:
            sm = SCHED_LAMBDA_RE.search(line)
            if sm and PTRISH_CAPTURE_RE.search(sm.group(1)):
                body = lambda_body(lines, idx, sm.end())
                if not LIVENESS_HINT_RE.search(body):
                    findings.append(
                        Finding(path, idx + 1, "callback-liveness",
                                "scheduler callback captures a raw node/connection "
                                "pointer without a liveness guard; re-validate (or "
                                "capture this + an id and resolve at fire time)"))

        hm = HANDLER_DEF_RE.search(line)
        if hm:
            handler_spans.append((idx, hm.group(1)))

    # handler-state-check: the handler body's first dozen lines must consult
    # the VC state (guard clause or CMTOS_DCHECK on state_).
    for start, name in handler_spans:
        body = "\n".join(lines[start : start + 12])
        if "handler-state-check" in allowed_rules(lines, start):
            continue
        if not STATE_CHECK_RE.search(body.split("\n", 1)[1] if "\n" in body else ""):
            findings.append(
                Finding(path, start + 1, "handler-state-check",
                        f"{name}() must validate the VC state before acting"))

    return findings


def iter_files(args: list[str]) -> list[Path]:
    roots = [REPO_ROOT / a for a in args] if args else [REPO_ROOT / d for d in DEFAULT_SCAN]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                files.append(p)
    return files


PROBE = """\
#include "../foo.h"
#include <bits/stdc++.h>
void f() {
  mu.lock();
  char b[8]; sprintf(b, "x");
  assert(1 == 1);
  mu.unlock();  // cmtos-lint: allow(naked-mutex)
  const auto n = static_cast<std::uint16_t>(v.size());
  sched.after(d, [this, conn] { conn->send(); });
  sched.after(d, [this, conn] { if (conn != nullptr) conn->send(); });
  mon.set_agreed(p);
  mon.set_agreed(p);  // cmtos-lint: allow(qos-set-agreed)
}
"""
PROBE_EXPECT = {  # line -> rule
    (1, "include-hygiene"),
    (2, "include-hygiene"),
    (4, "naked-mutex"),
    (5, "banned-function"),
    (6, "banned-function"),  # raw assert (probe scans as src/)
    (8, "narrowing-in-codec"),  # probe scans as a codec file
    (9, "callback-liveness"),  # line 10 is guarded: no finding
    (11, "qos-set-agreed"),  # probe is src/ but not src/transport/; 12 allowed
}


NODE_PROBE = """\
void g() {
  auto& a = network_.node(node_).runtime();
  auto& b = network_.node(spec.sink).entity();
  auto& c = network_.node(peer_id).runtime();
  src_host.entity.t_connect_request(req);
  src_host.entity.bind(t, u);  // cmtos-lint: allow(cross-node-state-access)
}
"""
NODE_PROBE_EXPECT = {
    (3, "cross-node-state-access"),  # foreign node resolve (spec.sink)
    (4, "cross-node-state-access"),  # foreign node resolve (peer_id)
    (5, "cross-node-state-access"),  # foreign host layer deref; 6 allowed
}


DATAPLANE_PROBE = """\
void h() {
  pkt.payload.assign(bytes.begin(), bytes.end());
  pkt.payload = std::vector<std::uint8_t>(len, 0);
  auto copy = std::vector<std::uint8_t>(view.begin(), view.end());
  frag->assign(p, p + n);
  pkt.payload.assign(hdr.begin(), hdr.end());  // cmtos-lint: allow(dataplane-payload-copy)
}
"""
DATAPLANE_PROBE_EXPECT = {
    (2, "dataplane-payload-copy"),  # .assign onto a payload member
    (3, "dataplane-payload-copy"),  # fresh vector assigned to a payload
    (4, "dataplane-payload-copy"),  # vector copy-constructed from a view
    (5, "dataplane-payload-copy"),  # .assign onto a fragment; 6 allowed
}


def selftest() -> int:
    """Verifies every rule both fires on a seeded probe and honours allow()."""
    import tempfile

    with tempfile.TemporaryDirectory(dir=REPO_ROOT) as tmp:
        # Path chosen so in_src and CODEC_FILE_RE both apply.
        probe_dir = Path(tmp) / "src"
        probe_dir.mkdir()
        probe = probe_dir / "probe_codec.cpp"
        probe.write_text(PROBE, encoding="utf-8")
        got = {(f.line_no, f.rule) for f in check_file(probe)}
        # Second probe: cross-node-state-access applies only inside the
        # node-scoped layer dirs, so it gets its own file under src/orch/.
        node_dir = probe_dir / "orch"
        node_dir.mkdir()
        node_probe = node_dir / "probe_node.cpp"
        node_probe.write_text(NODE_PROBE, encoding="utf-8")
        node_got = {(f.line_no, f.rule) for f in check_file(node_probe)}
        # Third probe: dataplane-payload-copy applies inside the data-plane
        # layers; src/net/ is one and carries no other dir-scoped rules.
        dp_dir = probe_dir / "net"
        dp_dir.mkdir()
        dp_probe = dp_dir / "probe_link.cpp"
        dp_probe.write_text(DATAPLANE_PROBE, encoding="utf-8")
        dp_got = {(f.line_no, f.rule) for f in check_file(dp_probe)}
    ok = True
    if got != PROBE_EXPECT:
        print(f"cmtos-lint selftest FAILED:\n  missing: {PROBE_EXPECT - got}\n"
              f"  spurious: {got - PROBE_EXPECT}", file=sys.stderr)
        ok = False
    if node_got != NODE_PROBE_EXPECT:
        print(f"cmtos-lint selftest (node probe) FAILED:\n"
              f"  missing: {NODE_PROBE_EXPECT - node_got}\n"
              f"  spurious: {node_got - NODE_PROBE_EXPECT}", file=sys.stderr)
        ok = False
    if dp_got != DATAPLANE_PROBE_EXPECT:
        print(f"cmtos-lint selftest (dataplane probe) FAILED:\n"
              f"  missing: {DATAPLANE_PROBE_EXPECT - dp_got}\n"
              f"  spurious: {dp_got - DATAPLANE_PROBE_EXPECT}", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print("cmtos-lint selftest passed", file=sys.stderr)
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--selftest":
        return selftest()
    findings: list[Finding] = []
    files = iter_files(argv)
    for f in files:
        findings.extend(check_file(f))
    for finding in findings:
        print(finding)
    print(f"cmtos-lint: {len(files)} files, {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
