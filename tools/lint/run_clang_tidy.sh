#!/usr/bin/env sh
# Runs clang-tidy over the cmtos sources with the repo's curated .clang-tidy.
#
# clang-tidy is not part of the minimal dev image, so the script is
# availability-gated: when the binary is absent it prints a notice and exits
# 0, keeping local workflows and constrained CI runners green while still
# enforcing the checks wherever the tool exists.
#
# Usage: tools/lint/run_clang_tidy.sh [build-dir]
#   build-dir must contain compile_commands.json (configure with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).  Defaults to ./build.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (checks run where the tool is installed)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing; configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

cd "$repo_root"
files=$(find src -name '*.cpp' | sort)
echo "run_clang_tidy: checking $(echo "$files" | wc -l) files" >&2
# shellcheck disable=SC2086
exec clang-tidy -p "$build_dir" --quiet $files
